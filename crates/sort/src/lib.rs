//! # km-sort — distributed sorting in `O~(n/k²)` rounds.
//!
//! The paper's Section 1.3 presents sorting as a flagship application of
//! the General Lower Bound Theorem: `n` keys are randomly distributed
//! over the `k` machines, machine `i` must end up holding the `i`-th
//! block of order statistics, and the GLBT gives a `Ω~(n/k²)` round
//! lower bound that is *tight* — "there exists an `O~(n/k²)`-round
//! sorting algorithm". This crate is that algorithm: a **sample sort**.
//!
//! Protocol phases (FIFO flush barriers between phases, as in the other
//! protocols of this workspace):
//!
//! 0. every machine sorts locally (free) and sends `Θ(k log n)` uniform
//!    samples to the coordinator;
//! 1. the coordinator broadcasts `k−1` splitters;
//! 2. every machine routes each key to its splitter bucket's machine —
//!    the dominant phase: `n/k` keys per machine to near-uniform
//!    destinations, i.e. `Θ(n/k²)` keys per link (Lemma 13);
//! 3. bucket sizes are broadcast so everyone knows the exact global rank
//!    offset of every bucket;
//! 4. each key is re-routed to the machine owning its exact rank range
//!    (only `O(δn/k)` boundary keys move when splitters are good);
//! 5. done — machine `i` holds exactly ranks `[i·⌈n/k⌉, (i+1)·⌈n/k⌉)`.
//!
//! Keys must be distinct (random `u64` workloads are; duplicate handling
//! would only add a tie-breaking tag).

use km_core::{
    run_algorithm, BitReader, BitWriter, CodecError, Envelope, KmAlgorithm, Metrics, NetConfig,
    Outbox, Protocol, RoundCtx, Runner, Status, WireCodec, WireSize,
};
use rand::seq::SliceRandom;
use rand::Rng;

/// Message payload of the sample-sort protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortKind {
    /// A sampled key on its way to the coordinator (phase 0).
    Sample(u64),
    /// A splitter broadcast by the coordinator (phase 1).
    Splitter(u64),
    /// A key routed to its bucket (phase 2) or delivered to its exact
    /// owner (phase 5).
    Key(u64),
    /// A rebalanced key travelling via a random relay (phase 4): boundary
    /// keys all aim at adjacent machines, so Valiant routing is needed to
    /// keep per-link load at `O~(n/k²)` (Lemma 13 applied twice).
    RelayKey {
        /// The machine owning the key's exact rank.
        owner: u32,
        /// The key.
        key: u64,
    },
    /// Bucket-size announcement (phase 3).
    Count(u64),
    /// Phase barrier marker.
    Flush,
}

/// A phase-tagged message (receivers buffer ahead-of-phase messages;
/// the flush barrier bounds drift to one phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortMsg {
    /// The sender's phase when emitting.
    pub phase: u8,
    /// The payload.
    pub kind: SortKind,
}

impl WireSize for SortMsg {
    fn bits(&self) -> u64 {
        let body = match self.kind {
            SortKind::Sample(_) | SortKind::Splitter(_) | SortKind::Key(_) => 64,
            SortKind::RelayKey { .. } => 64 + 16,
            SortKind::Count(_) => 32,
            SortKind::Flush => 5,
        };
        3 + body
    }
}

/// The codec spends no bits on a kind tag: the frame's exact bit count
/// plus the 3-bit phase already pin the kind down, because the protocol
/// emits each kind in fixed phases (`Sample`@0, `Splitter`@1, `Key`@2|5,
/// `Count`@3, `RelayKey`@4) and no two kinds of the same phase share a
/// body width. Anything off that grid is a corrupt frame.
impl WireCodec for SortMsg {
    fn encode(&self, w: &mut BitWriter) {
        w.put(self.phase as u64, 3);
        match self.kind {
            SortKind::Sample(key) | SortKind::Splitter(key) | SortKind::Key(key) => {
                w.put(key, 64);
            }
            SortKind::RelayKey { owner, key } => {
                w.put(owner as u64, 16);
                w.put(key, 64);
            }
            SortKind::Count(c) => w.put(c, 32),
            SortKind::Flush => w.put(0, 5),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let phase = r.take(3)? as u8;
        let kind = match r.remaining() {
            5 => {
                r.take(5)?;
                SortKind::Flush
            }
            64 => {
                let key = r.take(64)?;
                match phase {
                    0 => SortKind::Sample(key),
                    1 => SortKind::Splitter(key),
                    2 | 5 => SortKind::Key(key),
                    p => {
                        return Err(CodecError::Invalid {
                            what: "64-bit sort body in a phase that sends none",
                            value: p as u64,
                        })
                    }
                }
            }
            80 => SortKind::RelayKey {
                owner: r.take(16)? as u32,
                key: r.take(64)?,
            },
            32 => SortKind::Count(r.take(32)?),
            other => {
                return Err(CodecError::Invalid {
                    what: "sort message body width",
                    value: other,
                })
            }
        };
        Ok(SortMsg { phase, kind })
    }
}

/// One machine of the sample-sort protocol.
#[derive(Debug)]
pub struct SampleSort {
    /// Total key count (global, known: it is part of the problem
    /// statement — machine `i` must output a specific rank range).
    n: usize,
    /// Samples per machine.
    samples_per_machine: usize,
    keys: Vec<u64>,
    splitters: Vec<u64>,
    bucket: Vec<u64>,
    counts: Vec<Option<u64>>,
    relay_buf: Vec<(usize, u64)>,
    phase: u8,
    flushes: usize,
    pending: Vec<(usize, SortMsg)>,
    finished: bool,
    /// Final keys: exactly this machine's rank range, ascending.
    pub output: Vec<u64>,
}

impl SampleSort {
    /// Builds protocol instances from per-machine key lists.
    ///
    /// # Panics
    /// Panics if keys are not globally distinct.
    pub fn build_all(local_keys: Vec<Vec<u64>>, samples_per_machine: usize) -> Vec<SampleSort> {
        let n: usize = local_keys.iter().map(Vec::len).sum();
        let mut all: Vec<u64> = local_keys.iter().flatten().copied().collect();
        all.sort_unstable();
        let distinct = all.windows(2).all(|w| w[0] < w[1]);
        assert!(distinct, "sample sort requires distinct keys");
        let k = local_keys.len();
        local_keys
            .into_iter()
            .map(|mut keys| {
                keys.sort_unstable();
                SampleSort {
                    n,
                    samples_per_machine,
                    keys,
                    splitters: Vec::new(),
                    bucket: Vec::new(),
                    counts: vec![None; k],
                    relay_buf: Vec::new(),
                    phase: 0,
                    flushes: 0,
                    pending: Vec::new(),
                    finished: false,
                    output: Vec::new(),
                }
            })
            .collect()
    }

    /// Uniformly random per-machine keys (the experiment workload):
    /// `n` distinct keys dealt round-robin after a shuffle.
    pub fn random_input<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<Vec<u64>> {
        // Distinct keys: sample then dedup-and-extend until n collected.
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(rng.gen::<u64>());
        }
        let mut keys: Vec<u64> = set.into_iter().collect();
        keys.shuffle(rng);
        let mut locals = vec![Vec::with_capacity(n / k + 1); k];
        for (i, key) in keys.into_iter().enumerate() {
            locals[i % k].push(key);
        }
        locals
    }

    /// Rank range owned by machine `i`: `[i·q, min((i+1)·q, n))` with
    /// `q = ⌈n/k⌉`.
    pub fn rank_range(n: usize, k: usize, i: usize) -> (usize, usize) {
        let q = n.div_ceil(k);
        ((i * q).min(n), ((i + 1) * q).min(n))
    }

    fn bucket_of(&self, key: u64) -> usize {
        self.splitters.partition_point(|&s| s <= key)
    }

    fn phase0(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<SortMsg>) {
        // Regular (evenly spaced) sampling of the locally sorted keys —
        // the PSRS trick: with s samples per machine, every splitter
        // bucket deviates from n/k by at most O(n/s), so the phase-4
        // rebalance moves only O(n/s)·k keys in total.
        let s = self.samples_per_machine.min(self.keys.len());
        for i in 0..s {
            let idx = (i + 1) * self.keys.len() / (s + 1);
            let key = self.keys[idx.min(self.keys.len() - 1)];
            if ctx.me == 0 {
                self.bucket.push(key); // coordinator keeps its samples
            } else {
                out.send(
                    0,
                    SortMsg {
                        phase: 0,
                        kind: SortKind::Sample(key),
                    },
                );
            }
        }
        out.broadcast(
            ctx.me,
            SortMsg {
                phase: 0,
                kind: SortKind::Flush,
            },
        );
    }

    fn phase1(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<SortMsg>) {
        if ctx.me == 0 {
            // Coordinator: samples are in `bucket`; pick k−1 splitters.
            let mut samples = std::mem::take(&mut self.bucket);
            samples.sort_unstable();
            let k = ctx.k;
            let mut splitters = Vec::with_capacity(k - 1);
            for i in 1..k {
                let idx = i * samples.len() / k;
                splitters.push(samples[idx.min(samples.len().saturating_sub(1))]);
            }
            splitters.dedup();
            for &s in &splitters {
                out.broadcast(
                    ctx.me,
                    SortMsg {
                        phase: 1,
                        kind: SortKind::Splitter(s),
                    },
                );
            }
            self.splitters = splitters;
        }
        out.broadcast(
            ctx.me,
            SortMsg {
                phase: 1,
                kind: SortKind::Flush,
            },
        );
    }

    fn phase2(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<SortMsg>) {
        self.splitters.sort_unstable();
        let keys = std::mem::take(&mut self.keys);
        for key in keys {
            let b = self.bucket_of(key);
            if b == ctx.me {
                self.bucket.push(key);
            } else {
                out.send(
                    b,
                    SortMsg {
                        phase: 2,
                        kind: SortKind::Key(key),
                    },
                );
            }
        }
        out.broadcast(
            ctx.me,
            SortMsg {
                phase: 2,
                kind: SortKind::Flush,
            },
        );
    }

    fn phase3(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<SortMsg>) {
        self.bucket.sort_unstable();
        self.counts[ctx.me] = Some(self.bucket.len() as u64);
        out.broadcast(
            ctx.me,
            SortMsg {
                phase: 3,
                kind: SortKind::Count(self.bucket.len() as u64),
            },
        );
        out.broadcast(
            ctx.me,
            SortMsg {
                phase: 3,
                kind: SortKind::Flush,
            },
        );
    }

    fn phase4(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<SortMsg>) {
        // Exact global rank of my bucket's first key.
        let offset: u64 = self.counts[..ctx.me]
            .iter()
            .map(|c| c.expect("all counts announced"))
            .sum();
        let bucket = std::mem::take(&mut self.bucket);
        let q = self.n.div_ceil(ctx.k);
        for (idx, key) in bucket.into_iter().enumerate() {
            let rank = offset as usize + idx;
            let owner = (rank / q).min(ctx.k - 1);
            if owner == ctx.me {
                self.output.push(key);
            } else {
                // Boundary traffic is adjacent-machine-concentrated:
                // Valiant-route via a uniform relay to restore Lemma 13.
                let relay = ctx.rng.gen_range(0..ctx.k);
                let msg = SortMsg {
                    phase: 4,
                    kind: SortKind::RelayKey {
                        owner: owner as u32,
                        key,
                    },
                };
                out.send(relay, msg);
            }
        }
        out.broadcast(
            ctx.me,
            SortMsg {
                phase: 4,
                kind: SortKind::Flush,
            },
        );
    }

    fn phase5(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<SortMsg>) {
        let relayed = std::mem::take(&mut self.relay_buf);
        for (owner, key) in relayed {
            if owner == ctx.me {
                self.output.push(key);
            } else {
                out.send(
                    owner,
                    SortMsg {
                        phase: 5,
                        kind: SortKind::Key(key),
                    },
                );
            }
        }
        out.broadcast(
            ctx.me,
            SortMsg {
                phase: 5,
                kind: SortKind::Flush,
            },
        );
    }

    fn apply(&mut self, src: usize, msg: &SortMsg) {
        match msg.kind {
            SortKind::Sample(key) => self.bucket.push(key),
            SortKind::Splitter(s) => self.splitters.push(s),
            SortKind::Key(key) => {
                if msg.phase < 4 {
                    self.bucket.push(key);
                } else {
                    self.output.push(key);
                }
            }
            SortKind::RelayKey { owner, key } => self.relay_buf.push((owner as usize, key)),
            SortKind::Count(c) => self.counts[src] = Some(c),
            SortKind::Flush => self.flushes += 1,
        }
    }

    fn maybe_advance(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<SortMsg>) {
        while !self.finished && self.flushes == ctx.k - 1 {
            self.flushes = 0;
            self.phase += 1;
            let pending = std::mem::take(&mut self.pending);
            for (src, msg) in &pending {
                self.apply(*src, msg);
            }
            match self.phase {
                1 => self.phase1(ctx, out),
                2 => self.phase2(ctx, out),
                3 => self.phase3(ctx, out),
                4 => self.phase4(ctx, out),
                5 => self.phase5(ctx, out),
                6 => {
                    self.output.sort_unstable();
                    self.finished = true;
                }
                // lint: allow(panic) — the phase counter is bounded by the protocol's round schedule
                p => unreachable!("no phase {p}"),
            }
        }
    }
}

impl Protocol for SampleSort {
    type Msg = SortMsg;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<SortMsg>>,
        out: &mut Outbox<SortMsg>,
    ) -> Status {
        if ctx.round == 0 {
            self.phase0(ctx, out);
            self.maybe_advance(ctx, out);
            return if self.finished {
                Status::Done
            } else {
                Status::Active
            };
        }
        for env in inbox.drain(..) {
            if env.msg.phase == self.phase {
                self.apply(env.src, &env.msg);
            } else {
                self.pending.push((env.src, env.msg));
            }
        }
        self.maybe_advance(ctx, out);
        if self.finished {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// The sample-sort pipeline as a [`KmAlgorithm`]: `n` keys dealt over
/// the machines in, machine `i`'s exact rank range out.
#[derive(Debug, Clone)]
pub struct DistributedSort {
    /// Per-machine input keys (machine order; must be globally distinct).
    pub inputs: Vec<Vec<u64>>,
    /// Samples each machine contributes to splitter selection.
    pub samples_per_machine: usize,
}

impl DistributedSort {
    /// An instance with the default sampling rate: `max(32, 2k)` regular
    /// samples per machine — the coordinator funnel stays `O~(k/B)`
    /// rounds per link while buckets deviate by only `O(n/k)` keys,
    /// keeping the phase-4 rebalance at `O~(n/k²)` per link.
    pub fn new(inputs: Vec<Vec<u64>>) -> Self {
        let samples_per_machine = (2 * inputs.len()).max(32);
        DistributedSort {
            inputs,
            samples_per_machine,
        }
    }
}

impl KmAlgorithm for DistributedSort {
    type Machine = SampleSort;
    type Output = Vec<Vec<u64>>;

    fn build(&self, k: usize) -> Vec<SampleSort> {
        assert_eq!(self.inputs.len(), k, "one key list per machine");
        SampleSort::build_all(self.inputs.clone(), self.samples_per_machine)
    }

    fn extract(&self, machines: Vec<SampleSort>, _metrics: &Metrics) -> Vec<Vec<u64>> {
        machines.into_iter().map(|m| m.output).collect()
    }
}

/// Runs the full pipeline and returns `(per-machine outputs, metrics)`.
/// Thin wrapper over [`run_algorithm`] with the default engine choice.
pub fn run_sample_sort(
    local_keys: Vec<Vec<u64>>,
    net: NetConfig,
) -> Result<(Vec<Vec<u64>>, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&DistributedSort::new(local_keys), Runner::new(net))?;
    Ok((outcome.output, outcome.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net(k: usize, n: usize, seed: u64) -> NetConfig {
        NetConfig::polylog(k, n, seed).max_rounds(5_000_000)
    }

    fn check_sorted_output(inputs: &[Vec<u64>], outputs: &[Vec<u64>]) {
        let n: usize = inputs.iter().map(Vec::len).sum();
        let k = inputs.len();
        let mut want: Vec<u64> = inputs.iter().flatten().copied().collect();
        want.sort_unstable();
        let mut got = Vec::with_capacity(n);
        for (i, out) in outputs.iter().enumerate() {
            let (lo, hi) = SampleSort::rank_range(n, k, i);
            assert_eq!(out.len(), hi - lo, "machine {i} holds wrong range size");
            assert!(out.windows(2).all(|w| w[0] < w[1]), "machine {i} unsorted");
            got.extend_from_slice(out);
        }
        assert_eq!(got, want, "concatenation is the global sort");
    }

    #[test]
    fn sorts_random_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for (n, k) in [(200usize, 4usize), (500, 8), (64, 16), (100, 3)] {
            let inputs = SampleSort::random_input(n, k, &mut rng);
            let (outputs, _) = run_sample_sort(inputs.clone(), net(k, n, 9)).unwrap();
            check_sorted_output(&inputs, &outputs);
        }
    }

    #[test]
    fn sorts_adversarial_input() {
        // All small keys on one machine, all large on another.
        let inputs = vec![
            (0..100u64).collect::<Vec<_>>(),
            (1000..1100u64).collect(),
            (500..600u64).collect(),
        ];
        let (outputs, _) = run_sample_sort(inputs.clone(), net(3, 300, 2)).unwrap();
        check_sorted_output(&inputs, &outputs);
    }

    #[test]
    fn single_machine_sorts_locally() {
        let inputs = vec![vec![5, 3, 9, 1, 7]];
        let (outputs, metrics) = run_sample_sort(inputs, net(1, 5, 0)).unwrap();
        assert_eq!(outputs[0], vec![1, 3, 5, 7, 9]);
        assert_eq!(metrics.total_msgs(), 0);
    }

    #[test]
    fn rank_ranges_partition() {
        for (n, k) in [(100usize, 7usize), (64, 8), (10, 3)] {
            let mut total = 0;
            for i in 0..k {
                let (lo, hi) = SampleSort::rank_range(n, k, i);
                assert!(lo <= hi);
                total += hi - lo;
            }
            assert_eq!(total, n);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_duplicate_keys() {
        let _ = SampleSort::build_all(vec![vec![1, 2], vec![2, 3]], 2);
    }

    proptest::proptest! {
        #[test]
        fn sort_msgs_roundtrip_the_wire(
            key in 0u64..=u64::MAX,
            owner in 0u32..65536,
            phase in 0u8..6,
        ) {
            // Every kind in the phase it actually ships in (the codec
            // decodes by (phase, body width), so off-grid combinations
            // are corrupt frames, not messages).
            let kind = match phase {
                0 => SortKind::Sample(key),
                1 => SortKind::Splitter(key),
                2 | 5 => SortKind::Key(key),
                3 => SortKind::Count(key >> 32),
                _ => SortKind::RelayKey { owner, key },
            };
            km_core::assert_roundtrip(&SortMsg { phase, kind });
            km_core::assert_roundtrip(&SortMsg {
                phase,
                kind: SortKind::Flush,
            });
        }
    }

    #[test]
    fn rounds_scale_superlinearly_in_k() {
        // Fixed n, growing k: rounds should drop faster than 1/k.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let n = 4000;
        let run = |k: usize, rng: &mut ChaCha8Rng| {
            let inputs = SampleSort::random_input(n, k, rng);
            let (_, m) = run_sample_sort(inputs, net(k, n, 4)).unwrap();
            m.rounds as f64
        };
        let r4 = run(4, &mut rng);
        let r8 = run(8, &mut rng);
        assert!(
            r4 / r8 > 2.0,
            "r4={r4} r8={r8}: expected superlinear speedup"
        );
    }
}
