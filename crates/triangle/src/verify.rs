//! Exactness verification for distributed enumerators.

use crate::seq::enumerate_triangles;
use km_graph::ids::Triangle;
use km_graph::CsrGraph;

/// The outcome of comparing a distributed enumeration with the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerationDiff {
    /// Triangles the distributed run missed.
    pub missing: Vec<Triangle>,
    /// Triangles reported that do not exist (or were duplicated).
    pub spurious: Vec<Triangle>,
}

impl EnumerationDiff {
    /// True when the enumeration was exact.
    pub fn is_exact(&self) -> bool {
        self.missing.is_empty() && self.spurious.is_empty()
    }
}

/// Compares a (sorted or unsorted) distributed output with the sequential
/// oracle. Duplicates in `got` are reported as spurious.
pub fn diff_enumeration(g: &CsrGraph, got: &[Triangle]) -> EnumerationDiff {
    let want = enumerate_triangles(g);
    let mut got_sorted = got.to_vec();
    got_sorted.sort_unstable();
    let mut missing = Vec::new();
    let mut spurious = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < want.len() || j < got_sorted.len() {
        if i == want.len() {
            spurious.push(got_sorted[j]);
            j += 1;
        } else if j == got_sorted.len() {
            missing.push(want[i]);
            i += 1;
        } else {
            match want[i].cmp(&got_sorted[j]) {
                std::cmp::Ordering::Less => {
                    missing.push(want[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    spurious.push(got_sorted[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    // Extra copies of the same triangle are spurious.
                    while j < got_sorted.len() && got_sorted[j] == got_sorted[j - 1] {
                        spurious.push(got_sorted[j]);
                        j += 1;
                    }
                }
            }
        }
    }
    EnumerationDiff { missing, spurious }
}

/// Panics with a readable report unless `got` is exactly the triangle set
/// of `g`.
pub fn assert_exact_enumeration(g: &CsrGraph, got: &[Triangle]) {
    let diff = diff_enumeration(g, got);
    assert!(
        diff.is_exact(),
        "enumeration mismatch: {} missing (first: {:?}), {} spurious (first: {:?})",
        diff.missing.len(),
        diff.missing.first(),
        diff.spurious.len(),
        diff.spurious.first()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::classic;

    #[test]
    fn exact_when_equal() {
        let g = classic::complete(5);
        let ts = enumerate_triangles(&g);
        assert!(diff_enumeration(&g, &ts).is_exact());
        assert_exact_enumeration(&g, &ts);
    }

    #[test]
    fn detects_missing_and_spurious() {
        let g = classic::complete(4);
        let mut ts = enumerate_triangles(&g);
        let dropped = ts.pop().unwrap();
        ts.push(Triangle::new(0, 1, 2)); // duplicate
        let diff = diff_enumeration(&g, &ts);
        assert_eq!(diff.missing, vec![dropped]);
        assert_eq!(diff.spurious, vec![Triangle::new(0, 1, 2)]);
        assert!(!diff.is_exact());
    }

    #[test]
    #[should_panic(expected = "enumeration mismatch")]
    fn assertion_panics_on_mismatch() {
        let g = classic::complete(4);
        assert_exact_enumeration(&g, &[]);
    }
}
