//! Sequential triangle enumeration oracles.
//!
//! [`enumerate_triangles`] is the standard *forward* algorithm on sorted
//! adjacency (each triangle reported once, `O(m^{3/2})`);
//! [`node_iterator_naive`] is the textbook `O(Σ deg²)` enumerator kept as
//! an independent oracle for property tests.

use km_graph::ids::Triangle;
use km_graph::CsrGraph;

/// Enumerates every triangle of `g` exactly once, in canonical order.
///
/// Walks each edge `(u, v)` with `u < v` and merge-intersects the
/// higher-than-`v` tails of the two sorted adjacency lists.
pub fn enumerate_triangles(g: &CsrGraph) -> Vec<Triangle> {
    let mut out = Vec::new();
    for u in g.vertices() {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = g.neighbors(v);
            // Intersect {w ∈ N(u) : w > v} with {w ∈ N(v) : w > v}.
            let mut i = nu.partition_point(|&w| w <= v);
            let mut j = nv.partition_point(|&w| w <= v);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(Triangle {
                            a: u,
                            b: v,
                            c: nu[i],
                        });
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    out
}

/// Number of triangles (no materialization).
pub fn count_triangles(g: &CsrGraph) -> usize {
    let mut count = 0;
    for u in g.vertices() {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = g.neighbors(v);
            let mut i = nu.partition_point(|&w| w <= v);
            let mut j = nv.partition_point(|&w| w <= v);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// The naive node-iterator oracle: for every vertex, test all neighbor
/// pairs. Quadratic in degree — use only on small graphs in tests.
pub fn node_iterator_naive(g: &CsrGraph) -> Vec<Triangle> {
    let mut out = Vec::new();
    for v in g.vertices() {
        let ns = g.neighbors(v);
        for (i, &a) in ns.iter().enumerate() {
            if a <= v {
                continue;
            }
            for &b in &ns[i + 1..] {
                if g.has_edge(a, b) {
                    out.push(Triangle::new(v, a, b));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Expected triangle count of `G(n, p)`: `C(n,3)·p³` (Theorem 3 uses
/// `t = Θ(C(n,3))` at `p = 1/2`).
pub fn expected_gnp_triangles(n: usize, p: f64) -> f64 {
    let n = n as f64;
    n * (n - 1.0) * (n - 2.0) / 6.0 * p * p * p
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::{classic, gnp};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn k4_has_four_triangles() {
        let g = classic::complete(4);
        let ts = enumerate_triangles(&g);
        assert_eq!(ts.len(), 4);
        assert_eq!(count_triangles(&g), 4);
    }

    #[test]
    fn complete_graph_count_is_binomial() {
        for n in [3usize, 5, 8, 12] {
            let g = classic::complete(n);
            let expect = n * (n - 1) * (n - 2) / 6;
            assert_eq!(count_triangles(&g), expect, "n={n}");
        }
    }

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(count_triangles(&classic::star(20)), 0);
        assert_eq!(count_triangles(&classic::path(20)), 0);
        assert_eq!(count_triangles(&classic::cycle(20)), 0);
        assert_eq!(count_triangles(&classic::complete_bipartite(5, 7)), 0);
        assert_eq!(count_triangles(&classic::cycle(3)), 1);
    }

    #[test]
    fn enumeration_is_canonical_and_unique() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = gnp(40, 0.3, &mut rng);
        let ts = enumerate_triangles(&g);
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ts.len(), "no duplicates");
        for t in &ts {
            assert!(t.a < t.b && t.b < t.c);
            assert!(g.has_edge(t.a, t.b) && g.has_edge(t.a, t.c) && g.has_edge(t.b, t.c));
        }
    }

    #[test]
    fn gnp_half_matches_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 60;
        let g = gnp(n, 0.5, &mut rng);
        let t = count_triangles(&g) as f64;
        let expect = expected_gnp_triangles(n, 0.5);
        assert!((t - expect).abs() < 0.25 * expect, "t={t} expect={expect}");
    }

    proptest! {
        /// The forward algorithm agrees with the naive oracle.
        #[test]
        fn forward_matches_naive(edges in proptest::collection::vec((0u32..25, 0u32..25), 0..180)) {
            let g = CsrGraph::from_edges(25, &edges);
            let fast = enumerate_triangles(&g);
            let slow = node_iterator_naive(&g);
            prop_assert_eq!(fast, slow);
        }

        /// Counting agrees with enumeration length.
        #[test]
        fn count_matches_enumeration(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..150)) {
            let g = CsrGraph::from_edges(20, &edges);
            prop_assert_eq!(count_triangles(&g), enumerate_triangles(&g).len());
        }
    }
}
