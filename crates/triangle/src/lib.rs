//! # km-triangle
//!
//! Triangle enumeration in the k-machine model (Sections 2.4 and 3.2).
//!
//! * [`seq`] — sequential enumerators (the "forward" merge-intersect
//!   algorithm plus a naive node-iterator used as a cross-check oracle);
//! * [`kmachine`] — the paper's `O~(m/k^{5/3} + n/k^{4/3})` algorithm
//!   (Theorem 5): color-based vertex partition into `Θ(k^{1/3})` classes,
//!   deterministic triplet→machine assignment, randomized **edge proxies**
//!   with the high-degree designation-request rule, and proxy re-routing;
//! * [`clique`] — the congested-clique specialization (`k = n`), the
//!   upper-bound side of Corollary 1's tight `Θ~(n^{1/3})`;
//! * [`baseline`] — the full-replication broadcast baseline
//!   (`O~(m/k)` rounds) that the scaling experiments compare against;
//! * [`triads`] — open-triad (two-edge triple) enumeration, which the
//!   paper notes its bounds extend to;
//! * [`verify`] — exactness checks (enumerated set ≡ sequential oracle).

pub mod baseline;
pub mod clique;
pub mod kmachine;
pub mod seq;
pub mod triads;
pub mod verify;

pub use kmachine::{run_kmachine_triangles, KmTriangle};
pub use seq::{count_triangles, enumerate_triangles};
pub use verify::assert_exact_enumeration;
