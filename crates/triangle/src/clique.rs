//! Triangle enumeration in the congested clique (`k = n`).
//!
//! The upper-bound side of Corollary 1: with one vertex per machine and
//! `Θ(log n)`-bit links, the Dolev–Lenzen–Peled partition enumerates all
//! triangles in `O~(n^{1/3})` rounds. The congested clique is *exactly*
//! the k-machine model with `k = n` and the identity vertex placement, so
//! this module instantiates the Theorem 5 protocol ([`KmTriangle`]) on
//! that special case — including the **edge-proxy hop**, which is what
//! spreads each machine's `deg(v)·O(n^{1/3})` edge copies uniformly over
//! the `n²` links (without it, the links into the `Θ(n)` triplet machines
//! carry `Θ(n^{2/3})` messages and the round complexity degrades; the C1
//! experiment measures exactly this).

use crate::kmachine::{run_kmachine_triangles, KmTriangle, TriConfig};
use km_core::clique::{clique_config, home_of_vertex};
use km_core::NetConfig;
use km_graph::ids::Triangle;
use km_graph::{CsrGraph, Partition};
use std::sync::Arc;

pub use km_core::clique::clique_config as config_for;

/// The identity partition of the congested clique: vertex `v` on
/// machine `v`.
pub fn identity_partition(n: usize) -> Partition {
    Partition::from_assignment(n, (0..n as u32).map(home_of_vertex).collect())
}

/// Builds the `n` machines of the congested-clique protocol
/// (the Theorem 5 machines under the identity placement).
pub fn build_clique_machines(g: &CsrGraph) -> Vec<KmTriangle> {
    let part = Arc::new(identity_partition(g.n()));
    // Degree threshold n is unreachable (max degree n−1): in the clique
    // every machine hosts one vertex and ships its own canonical edges,
    // which is already balanced — the designation rule is a no-op.
    let cfg = TriConfig {
        degree_threshold: Some(g.n().max(1)),
        enumerate_triads: false,
        use_proxies: true,
    };
    KmTriangle::build_all(g, &part, cfg)
}

/// Runs the congested-clique enumeration; returns the sorted global
/// triangle list and transcript metrics.
pub fn run_clique_triangles(
    g: &CsrGraph,
    seed: u64,
) -> Result<(Vec<Triangle>, km_core::Metrics), km_core::EngineError> {
    let net: NetConfig = clique_config(g.n(), seed);
    let part = Arc::new(identity_partition(g.n()));
    let cfg = TriConfig {
        degree_threshold: Some(g.n().max(1)),
        enumerate_triads: false,
        use_proxies: true,
    };
    run_kmachine_triangles(g, &part, cfg, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::enumerate_triangles;
    use km_graph::generators::{classic, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_partition_places_vertex_on_own_machine() {
        let p = identity_partition(9);
        for v in 0..9u32 {
            assert_eq!(p.home(v), v as usize);
            assert_eq!(p.members(v as usize), &[v]);
        }
    }

    #[test]
    fn clique_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for (n, p) in [(20, 0.5), (35, 0.3), (16, 0.9)] {
            let g = gnp(n, p, &mut rng);
            let (ts, _) = run_clique_triangles(&g, 7).unwrap();
            assert_eq!(ts, enumerate_triangles(&g), "n={n} p={p}");
        }
    }

    #[test]
    fn dense_clique_input() {
        let g = classic::complete(12);
        let (ts, metrics) = run_clique_triangles(&g, 1).unwrap();
        assert_eq!(ts.len(), 220);
        assert!(metrics.rounds > 0);
    }

    #[test]
    fn rounds_grow_sublinearly_with_n() {
        // Corollary 1 shape: rounds ≈ n^{1/3}·polylog, so going from n to
        // 8n should multiply rounds by far less than 8.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g1 = gnp(16, 0.5, &mut rng);
        let g2 = gnp(128, 0.5, &mut rng);
        let (_, m1) = run_clique_triangles(&g1, 2).unwrap();
        let (_, m2) = run_clique_triangles(&g2, 2).unwrap();
        let ratio = m2.rounds as f64 / m1.rounds.max(1) as f64;
        assert!(
            ratio < 8.0,
            "rounds ratio {ratio} (m1={} m2={})",
            m1.rounds,
            m2.rounds
        );
    }
}
