//! The full-replication broadcast baseline.
//!
//! The strawman the scaling experiments contrast with Theorem 5: every
//! machine broadcasts its canonically-owned edges to all `k−1` peers, so
//! everyone learns the whole graph and triangles are deduplicated by a
//! shared ownership hash. Per-link load is `Θ(m/k)` edges, i.e.
//! `O~(m/k)` rounds — a full `k^{2/3}` factor slower than the
//! color-partition algorithm, and the message complexity `Θ(m·k)` shows
//! why Corollary 2's "aggregate everything" strategies are wasteful.

use km_core::rng::keyed_hash;
use km_core::{
    id_bits, run_algorithm, BitReader, BitWriter, CodecError, Envelope, KmAlgorithm, Metrics,
    NetConfig, Outbox, Protocol, RoundCtx, Runner, Status, WireCodec, WireSize,
};
use km_graph::ids::Triangle;
use km_graph::{CsrGraph, DistGraphBuilder, Edge, LocalGraph, Partition, Vertex};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Broadcast-baseline message: an edge or a flush marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BcastMsg {
    /// A replicated edge.
    Edge {
        /// The edge.
        e: Edge,
        /// Wire size (a tag bit + 2 vertex ids — the odd width keeps an
        /// edge distinguishable from the even-width `Flush` marker).
        bits: u32,
    },
    /// Completion marker.
    Flush,
}

impl WireSize for BcastMsg {
    fn bits(&self) -> u64 {
        match self {
            BcastMsg::Edge { bits, .. } => *bits as u64,
            BcastMsg::Flush => 8,
        }
    }
}

/// Layout: a 1-bit tag (1 = edge, 0 = flush), then either two ids of
/// `(remaining / 2)` bits each or 7 zero padding bits.
impl WireCodec for BcastMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            BcastMsg::Edge { e, bits } => {
                w.put(1, 1);
                let idb = (bits - 1) / 2;
                w.put(u64::from(e.u), idb);
                w.put(u64::from(e.v), idb);
            }
            BcastMsg::Flush => {
                w.put(0, 1);
                w.put(0, 7);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let total = r.remaining();
        if r.take(1)? == 0 {
            r.take(7)?;
            return Ok(BcastMsg::Flush);
        }
        let rem = r.remaining();
        if !rem.is_multiple_of(2) || !(1..=32).contains(&(rem / 2)) {
            return Err(CodecError::Invalid {
                what: "broadcast edge body width",
                value: rem,
            });
        }
        let idb = (rem / 2) as u32;
        Ok(BcastMsg::Edge {
            e: Edge {
                u: r.take(idb)? as Vertex,
                v: r.take(idb)? as Vertex,
            },
            bits: total as u32,
        })
    }
}

/// One machine of the broadcast baseline.
#[derive(Debug)]
pub struct BroadcastTriangle {
    n: usize,
    /// This machine's RVP input (hosted vertices + adjacency + partition).
    lg: LocalGraph,
    edges: BTreeSet<Edge>,
    flushes: usize,
    finished: bool,
    /// Triangles owned (by hash) and enumerated by this machine.
    pub triangles: Vec<Triangle>,
}

impl BroadcastTriangle {
    /// Builds one protocol instance per machine (one fused pass via
    /// [`DistGraphBuilder`]).
    pub fn build_all(g: &CsrGraph, part: &Arc<Partition>) -> Vec<BroadcastTriangle> {
        let n = g.n();
        DistGraphBuilder::new(part)
            .undirected(g)
            .into_locals()
            .into_iter()
            .map(|lg| BroadcastTriangle {
                n,
                lg,
                edges: BTreeSet::new(),
                flushes: 0,
                finished: false,
                triangles: Vec::new(),
            })
            .collect()
    }

    fn enumerate(&mut self, ctx: &RoundCtx<'_>) {
        // Shared ownership hash dedups output across machines.
        let k = ctx.k;
        let me = ctx.me;
        let shared = ctx.shared_seed;
        let accept = |a: Vertex, b: Vertex, c: Vertex| {
            let key = ((a as u64) << 42) ^ ((b as u64) << 21) ^ c as u64;
            (keyed_hash(shared, key) % k as u64) as usize == me
        };
        self.triangles = crate::kmachine::enumerate_within(&self.edges, accept);
    }
}

impl Protocol for BroadcastTriangle {
    type Msg = BcastMsg;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<BcastMsg>>,
        out: &mut Outbox<BcastMsg>,
    ) -> Status {
        if ctx.round == 0 {
            let bits = (1 + 2 * id_bits(self.n)) as u32;
            for j in 0..self.lg.hosted() {
                let v = self.lg.vertex(j);
                for &w in self.lg.neighbors(j) {
                    // Canonical owner: the home of the smaller endpoint.
                    let e = Edge::new(v, w);
                    if self.lg.home(e.u) == ctx.me && v == e.u {
                        self.edges.insert(e);
                        out.broadcast(ctx.me, BcastMsg::Edge { e, bits });
                    }
                }
            }
            out.broadcast(ctx.me, BcastMsg::Flush);
            if ctx.k == 1 {
                self.enumerate(ctx);
                self.finished = true;
                return Status::Done;
            }
            return Status::Active;
        }
        for env in inbox.iter() {
            match env.msg {
                BcastMsg::Edge { e, .. } => {
                    self.edges.insert(e);
                }
                BcastMsg::Flush => self.flushes += 1,
            }
        }
        if !self.finished && self.flushes == ctx.k - 1 {
            self.enumerate(ctx);
            self.finished = true;
        }
        if self.finished {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// The broadcast baseline as a [`KmAlgorithm`]: graph + partition in,
/// sorted global triangle list out.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastTriangles<'a> {
    /// The input graph.
    pub g: &'a CsrGraph,
    /// The vertex partition (its `k` must match the runner's).
    pub part: &'a Arc<Partition>,
}

impl KmAlgorithm for BroadcastTriangles<'_> {
    type Machine = BroadcastTriangle;
    type Output = Vec<Triangle>;

    fn build(&self, k: usize) -> Vec<BroadcastTriangle> {
        assert_eq!(self.part.k(), k, "partition k must match the network k");
        BroadcastTriangle::build_all(self.g, self.part)
    }

    fn extract(&self, machines: Vec<BroadcastTriangle>, _metrics: &Metrics) -> Vec<Triangle> {
        let mut all: Vec<Triangle> = machines
            .iter()
            .flat_map(|m| m.triangles.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// Runs the broadcast baseline end to end. Thin wrapper over
/// [`run_algorithm`] with the default engine choice.
pub fn run_broadcast_triangles(
    g: &CsrGraph,
    part: &Arc<Partition>,
    net: NetConfig,
) -> Result<(Vec<Triangle>, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&BroadcastTriangles { g, part }, Runner::new(net))?;
    Ok((outcome.output, outcome.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmachine::{run_kmachine_triangles, TriConfig};
    use crate::seq::enumerate_triangles;
    use km_graph::generators::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net(k: usize, n: usize, seed: u64) -> NetConfig {
        NetConfig::polylog(k, n, seed).max_rounds(5_000_000)
    }

    #[test]
    fn baseline_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = gnp(40, 0.4, &mut rng);
        let part = Arc::new(Partition::by_hash(40, 6, 3));
        let (ts, _) = run_broadcast_triangles(&g, &part, net(6, 40, 4)).unwrap();
        assert_eq!(ts, enumerate_triangles(&g));
    }

    #[test]
    fn color_partition_beats_broadcast_on_rounds() {
        // Dense-ish graph, enough machines for the k^{2/3} gap to show.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 120;
        let k = 27;
        let g = gnp(n, 0.5, &mut rng);
        let part = Arc::new(Partition::by_hash(n, k, 5));
        let (_, m_bcast) = run_broadcast_triangles(&g, &part, net(k, n, 6)).unwrap();
        let (_, m_color) =
            run_kmachine_triangles(&g, &part, TriConfig::default(), net(k, n, 6)).unwrap();
        assert!(
            m_bcast.rounds > m_color.rounds,
            "broadcast {} rounds vs color {} rounds",
            m_bcast.rounds,
            m_color.rounds
        );
        assert!(m_bcast.total_msgs() > 2 * m_color.total_msgs());
    }

    proptest::proptest! {
        #[test]
        fn bcast_msgs_roundtrip_the_wire(
            n in 2usize..1_000_000,
            a in 0u32..1_000_000,
            b in 0u32..1_000_000,
        ) {
            let n32 = n as u32;
            let (a, b) = (a % n32, b % n32);
            let e = if a == b {
                Edge::new(a, (a + 1) % n32.max(2))
            } else {
                Edge::new(a, b)
            };
            let bits = (1 + 2 * id_bits(n)) as u32;
            km_core::assert_roundtrip(&BcastMsg::Edge { e, bits });
            km_core::assert_roundtrip(&BcastMsg::Flush);
        }
    }
}
