//! The `O~(m/k^{5/3} + n/k^{4/3})` triangle enumeration algorithm
//! (Theorem 5, Section 3.2), generalizing Dolev–Lenzen–Peled's
//! "Tri, tri again" partition to `k ≪ n` machines.
//!
//! **Color partition.** A shared hash colors every vertex with one of
//! `q = Θ(k^{1/3})` colors, splitting `V` into `q` classes of `O~(n/q)`
//! vertices. Every *multiset* `{a,b,c}` of colors is assigned to a
//! distinct machine (there are `C(q+2,3) ≤ k` of them; `q` is chosen
//! maximal). The machine owning `{a,b,c}` collects every edge whose
//! endpoint colors are a sub-multiset and enumerates exactly the
//! triangles whose color multiset equals `{a,b,c}` — so each triangle is
//! reported by exactly one machine, and each edge is replicated to at
//! most `q = O(k^{1/3})` machines (the count in the proof of Theorem 5).
//!
//! **Edge proxies and the designation rule.** Edges travel via a
//! uniformly random *proxy* machine (randomized proxy computation,
//! Section 1.3), which spreads the `m·k^{1/3}` re-routing messages evenly.
//! Who sends an edge to its proxy follows the paper's *proxy assignment
//! rule*: a machine hosting a vertex `v` of degree ≥ `2k·log n` broadcasts
//! a designation request, and the machines hosting `v`'s neighbors send
//! those edges instead (ties between two high-degree endpoints broken by
//! a shared coin) — this is what removes the `Δ/k` term from the runtime.
//!
//! Phases are separated by the same FIFO flush barrier as the PageRank
//! protocol (drift ≤ 1 phase, messages carry their phase tag).

use km_core::{
    id_bits, run_algorithm, BitReader, BitWriter, CodecError, Envelope, KmAlgorithm, Metrics,
    NetConfig, Outbox, Protocol, RoundCtx, Runner, Status, WireCodec, WireSize,
};
use km_core::{rng::keyed_hash, MachineIdx};
use km_graph::dist::EdgeListAdjacency;
use km_graph::ids::Triangle;
use km_graph::{CsrGraph, DistGraphBuilder, Edge, LocalGraph, Partition, Vertex};
// lint: allow(hash-iter) — HashMap is imported for the lookup-only triplet index below
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

const COLOR_SALT: u64 = 0x7A11_AC0F_F1CE_0001;
const PROXY_SALT: u64 = 0x7A11_AC0F_F1CE_0002;
const TIE_SALT: u64 = 0x7A11_AC0F_F1CE_0003;

/// Canonical 64-bit key of an edge (for hashing).
#[inline]
fn edge_key(e: Edge) -> u64 {
    ((e.u as u64) << 32) | e.v as u64
}

/// The shared color scheme: `q` colors and the multiset-triplet → machine
/// assignment, identically computable on every machine from `k` alone.
#[derive(Debug, Clone)]
pub struct ColorScheme {
    q: usize,
    triplets: Vec<[u8; 3]>,
    // lint: allow(hash-iter) — lookup-only triplet index, never iterated
    index: HashMap<[u8; 3], MachineIdx>,
}

impl ColorScheme {
    /// Builds the scheme for `k` machines: the largest `q` with
    /// `C(q+2,3) ≤ k` (so `q ≥ ⌊k^{1/3}⌋`), triplets enumerated in
    /// lexicographic order.
    pub fn for_machines(k: usize) -> Self {
        assert!(k >= 1, "need at least one machine");
        let mut q = 1usize;
        while (q + 1) * (q + 2) * (q + 3) / 6 <= k {
            q += 1;
        }
        let mut triplets = Vec::new();
        for a in 0..q as u8 {
            for b in a..q as u8 {
                for c in b..q as u8 {
                    triplets.push([a, b, c]);
                }
            }
        }
        let index = triplets
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as MachineIdx))
            .collect();
        ColorScheme { q, triplets, index }
    }

    /// Number of colors `q`.
    pub fn colors(&self) -> usize {
        self.q
    }

    /// Number of machines that own a triplet.
    pub fn triplet_machines(&self) -> usize {
        self.triplets.len()
    }

    /// The triplet owned by `machine`, if any.
    pub fn triplet_of(&self, machine: MachineIdx) -> Option<[u8; 3]> {
        self.triplets.get(machine).copied()
    }

    /// The color of vertex `v` under the shared seed.
    #[inline]
    pub fn color(&self, shared_seed: u64, v: Vertex) -> u8 {
        (keyed_hash(shared_seed ^ COLOR_SALT, v as u64) % self.q as u64) as u8
    }

    /// The machines whose triplet contains the (multiset) color pair
    /// `{ca, cb}` — at most `q` of them; exactly the machines that must
    /// receive an edge with these endpoint colors.
    pub fn machines_for_pair(&self, ca: u8, cb: u8) -> Vec<MachineIdx> {
        let mut out = Vec::with_capacity(self.q);
        for x in 0..self.q as u8 {
            let mut t = [ca, cb, x];
            t.sort_unstable();
            let m = self.index[&t];
            if !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }

    /// The unique machine that enumerates a triangle with these endpoint
    /// colors.
    pub fn owner_of(&self, c1: u8, c2: u8, c3: u8) -> MachineIdx {
        let mut t = [c1, c2, c3];
        t.sort_unstable();
        self.index[&t]
    }
}

/// Message payload of the triangle protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriPayload {
    /// "My vertex `v` has high degree — you designate its edges' proxies."
    HdRequest {
        /// The high-degree vertex.
        v: Vertex,
    },
    /// An edge on its way to its proxy.
    ToProxy {
        /// The edge.
        e: Edge,
    },
    /// An edge re-routed from its proxy to a triplet machine.
    ToMachine {
        /// The edge.
        e: Edge,
    },
    /// Phase-completion barrier marker.
    Flush,
}

/// A phase-tagged message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriMsg {
    /// The sender's phase when emitting (receivers buffer ahead-of-phase
    /// messages; drift is at most one phase).
    pub phase: u8,
    /// The payload.
    pub payload: TriPayload,
    bits: u32,
}

impl TriMsg {
    /// Header bits charged on every message: a 2-bit phase (the protocol
    /// has 4 phases) plus a 2-bit payload tag. The explicit tag keeps
    /// `ToProxy`/`ToMachine` (same width) and `HdRequest`/`Flush`
    /// (colliding at `id_bits = 4`) distinguishable on the wire.
    const HDR: u64 = 4;

    fn hd(n: usize, phase: u8, v: Vertex) -> Self {
        TriMsg {
            phase,
            payload: TriPayload::HdRequest { v },
            bits: (Self::HDR + id_bits(n)) as u32,
        }
    }
    fn to_proxy(n: usize, phase: u8, e: Edge) -> Self {
        TriMsg {
            phase,
            payload: TriPayload::ToProxy { e },
            bits: (Self::HDR + 2 * id_bits(n)) as u32,
        }
    }
    fn to_machine(n: usize, phase: u8, e: Edge) -> Self {
        TriMsg {
            phase,
            payload: TriPayload::ToMachine { e },
            bits: (Self::HDR + 2 * id_bits(n)) as u32,
        }
    }
    fn flush(phase: u8) -> Self {
        TriMsg {
            phase,
            payload: TriPayload::Flush,
            bits: 8,
        }
    }
}

impl WireSize for TriMsg {
    fn bits(&self) -> u64 {
        self.bits as u64
    }
}

/// Layout: phase (2) · tag (2) · body; ids take `remaining / fields`
/// bits, and `Flush` pads with 4 zero bits to its historical 8-bit cost.
impl WireCodec for TriMsg {
    fn encode(&self, w: &mut BitWriter) {
        w.put(u64::from(self.phase), 2);
        let idb = ((u64::from(self.bits) - Self::HDR)
            / match self.payload {
                TriPayload::HdRequest { .. } => 1,
                _ => 2,
            }) as u32;
        match self.payload {
            TriPayload::HdRequest { v } => {
                w.put(0, 2);
                w.put(u64::from(v), idb);
            }
            TriPayload::ToProxy { e } => {
                w.put(1, 2);
                w.put(u64::from(e.u), idb);
                w.put(u64::from(e.v), idb);
            }
            TriPayload::ToMachine { e } => {
                w.put(2, 2);
                w.put(u64::from(e.u), idb);
                w.put(u64::from(e.v), idb);
            }
            TriPayload::Flush => {
                w.put(3, 2);
                w.put(0, 4);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let total = r.remaining();
        let phase = r.take(2)? as u8;
        let tag = r.take(2)?;
        let idb = |rem: u64, fields: u64| -> Result<u32, CodecError> {
            if !rem.is_multiple_of(fields) || !(1..=32).contains(&(rem / fields)) {
                return Err(CodecError::Invalid {
                    what: "triangle message body width",
                    value: rem,
                });
            }
            Ok((rem / fields) as u32)
        };
        let payload = match tag {
            0 => TriPayload::HdRequest {
                v: r.take(idb(r.remaining(), 1)?)? as Vertex,
            },
            1 | 2 => {
                let w = idb(r.remaining(), 2)?;
                let e = Edge {
                    u: r.take(w)? as Vertex,
                    v: r.take(w)? as Vertex,
                };
                if tag == 1 {
                    TriPayload::ToProxy { e }
                } else {
                    TriPayload::ToMachine { e }
                }
            }
            _ => {
                r.take(4)?;
                TriPayload::Flush
            }
        };
        Ok(TriMsg {
            phase,
            payload,
            bits: total as u32,
        })
    }
}

/// Tuning knobs of the protocol.
#[derive(Debug, Clone, Copy)]
pub struct TriConfig {
    /// Degree threshold for the designation-request rule; `None` uses the
    /// paper's `2·k·log₂ n`.
    pub degree_threshold: Option<usize>,
    /// Also enumerate open triads (Section 1.2 notes the bounds extend).
    pub enumerate_triads: bool,
    /// Route edges through random proxies (the paper's randomized proxy
    /// computation). `false` sends designated edges straight to their
    /// triplet machines — the ablation showing why the extra hop exists.
    pub use_proxies: bool,
}

impl Default for TriConfig {
    fn default() -> Self {
        TriConfig {
            degree_threshold: None,
            enumerate_triads: false,
            use_proxies: true,
        }
    }
}

/// One machine of the Theorem 5 protocol.
#[derive(Debug)]
pub struct KmTriangle {
    n: usize,
    /// This machine's RVP input (hosted vertices + adjacency + partition).
    lg: LocalGraph,
    scheme: ColorScheme,
    threshold: usize,
    cfg: TriConfig,
    /// Globally-known high-degree vertices (mine + received requests).
    hd: BTreeSet<Vertex>,
    /// Edges this machine proxies.
    proxy_edges: Vec<Edge>,
    /// Edges received for my triplet.
    recv_edges: BTreeSet<Edge>,
    phase: u8,
    flushes: usize,
    pending: Vec<TriMsg>,
    finished: bool,
    /// Triangles this machine enumerated (exactly the triangles whose
    /// color multiset equals this machine's triplet).
    pub triangles: Vec<Triangle>,
    /// Open triads enumerated (only when `cfg.enumerate_triads`), as
    /// `(center, a, b)` with `a < b` and edge `{a,b}` absent.
    pub open_triads: Vec<(Vertex, Vertex, Vertex)>,
}

impl KmTriangle {
    /// Builds one protocol instance per machine from the global input
    /// (one fused pass via [`DistGraphBuilder`]).
    pub fn build_all(g: &CsrGraph, part: &Arc<Partition>, cfg: TriConfig) -> Vec<KmTriangle> {
        let k = part.k();
        let scheme = ColorScheme::for_machines(k);
        let threshold = cfg
            .degree_threshold
            .unwrap_or_else(|| (2.0 * k as f64 * (g.n().max(2) as f64).log2()).ceil() as usize);
        let n = g.n();
        DistGraphBuilder::new(part)
            .undirected(g)
            .into_locals()
            .into_iter()
            .map(|lg| KmTriangle {
                n,
                lg,
                scheme: scheme.clone(),
                threshold,
                cfg,
                hd: BTreeSet::new(),
                proxy_edges: Vec::new(),
                recv_edges: BTreeSet::new(),
                phase: 0,
                flushes: 0,
                pending: Vec::new(),
                finished: false,
                triangles: Vec::new(),
                open_triads: Vec::new(),
            })
            .collect()
    }

    /// The shared color scheme (for tests and experiments).
    pub fn scheme(&self) -> &ColorScheme {
        &self.scheme
    }

    fn apply(&mut self, msg: &TriMsg) {
        match msg.payload {
            TriPayload::HdRequest { v } => {
                self.hd.insert(v);
            }
            TriPayload::ToProxy { e } => self.proxy_edges.push(e),
            TriPayload::ToMachine { e } => {
                self.recv_edges.insert(e);
            }
            TriPayload::Flush => self.flushes += 1,
        }
    }

    /// Phase 0: broadcast designation requests for high-degree vertices.
    fn phase0(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<TriMsg>) {
        for (j, &v) in self.lg.vertices().iter().enumerate() {
            if self.lg.neighbors(j).len() >= self.threshold {
                self.hd.insert(v);
                out.broadcast(ctx.me, TriMsg::hd(self.n, 0, v));
            }
        }
        out.broadcast(ctx.me, TriMsg::flush(0));
    }

    /// The machine responsible for shipping edge `e` to its proxy,
    /// following the designation rule. Deterministic across machines
    /// because the HD set is global after phase 0.
    fn designator(&self, shared: u64, e: Edge) -> MachineIdx {
        let u_hd = self.hd.contains(&e.u);
        let v_hd = self.hd.contains(&e.v);
        match (u_hd, v_hd) {
            // v's request honored: u's home ships (and vice versa).
            (false, true) => self.lg.home(e.u),
            (true, false) => self.lg.home(e.v),
            // Tie: a shared coin picks which request wins.
            (true, true) => {
                if keyed_hash(shared ^ TIE_SALT, edge_key(e)) & 1 == 0 {
                    self.lg.home(e.v)
                } else {
                    self.lg.home(e.u)
                }
            }
            // No high-degree endpoint: the lower endpoint's home ships.
            (false, false) => self.lg.home(e.u),
        }
    }

    /// Phase 1: ship every edge I'm the designator of to its random proxy
    /// (or, in the ablation, straight to its triplet machines).
    fn phase1(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<TriMsg>) {
        let shared = ctx.shared_seed;
        let mut known: BTreeSet<Edge> = BTreeSet::new();
        for (v, ns) in self.lg.iter() {
            for &w in ns {
                known.insert(Edge::new(v, w));
            }
        }
        for &e in &known {
            if self.designator(shared, e) != ctx.me {
                continue;
            }
            if self.cfg.use_proxies {
                let proxy = km_core::router::proxy_of(shared ^ PROXY_SALT, edge_key(e), ctx.k);
                if proxy == ctx.me {
                    self.proxy_edges.push(e);
                } else {
                    out.send(proxy, TriMsg::to_proxy(self.n, 1, e));
                }
            } else {
                let ca = self.scheme.color(shared, e.u);
                let cb = self.scheme.color(shared, e.v);
                for m in self.scheme.machines_for_pair(ca, cb) {
                    if m == ctx.me {
                        self.recv_edges.insert(e);
                    } else {
                        out.send(m, TriMsg::to_machine(self.n, 1, e));
                    }
                }
            }
        }
        out.broadcast(ctx.me, TriMsg::flush(1));
    }

    /// Phase 2: as a proxy, re-route each edge to the machines whose
    /// triplet contains its color pair.
    fn phase2(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<TriMsg>) {
        let shared = ctx.shared_seed;
        let edges = std::mem::take(&mut self.proxy_edges);
        for e in edges {
            let ca = self.scheme.color(shared, e.u);
            let cb = self.scheme.color(shared, e.v);
            for m in self.scheme.machines_for_pair(ca, cb) {
                if m == ctx.me {
                    self.recv_edges.insert(e);
                } else {
                    out.send(m, TriMsg::to_machine(self.n, 2, e));
                }
            }
        }
        out.broadcast(ctx.me, TriMsg::flush(2));
    }

    /// Phase 3: local enumeration over the received edges.
    fn phase3(&mut self, ctx: &mut RoundCtx<'_>) {
        let shared = ctx.shared_seed;
        let Some(mine) = self.scheme.triplet_of(ctx.me) else {
            return; // machines beyond the triplet count only proxied
        };
        let scheme = &self.scheme;
        let accept = |a: Vertex, b: Vertex, c: Vertex| {
            let mut t = [
                scheme.color(shared, a),
                scheme.color(shared, b),
                scheme.color(shared, c),
            ];
            t.sort_unstable();
            t == mine
        };
        self.triangles = enumerate_within(&self.recv_edges, accept);
        if self.cfg.enumerate_triads {
            self.open_triads = enumerate_triads_within(&self.recv_edges, accept);
        }
    }

    fn maybe_advance(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Outbox<TriMsg>) {
        while !self.finished && self.flushes == ctx.k - 1 {
            self.flushes = 0;
            self.phase += 1;
            let pending = std::mem::take(&mut self.pending);
            for msg in &pending {
                debug_assert_eq!(msg.phase, self.phase, "phase drift exceeded 1");
                self.apply(msg);
            }
            match self.phase {
                1 => self.phase1(ctx, out),
                2 => self.phase2(ctx, out),
                3 => {
                    self.phase3(ctx);
                    self.finished = true;
                }
                // lint: allow(panic) — the phase counter is bounded by the protocol's round schedule
                p => unreachable!("no phase {p}"),
            }
        }
    }
}

impl Protocol for KmTriangle {
    type Msg = TriMsg;

    fn round(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        inbox: &mut Vec<Envelope<TriMsg>>,
        out: &mut Outbox<TriMsg>,
    ) -> Status {
        if ctx.round == 0 {
            self.phase0(ctx, out);
            self.maybe_advance(ctx, out); // k == 1 runs everything inline
            return if self.finished {
                Status::Done
            } else {
                Status::Active
            };
        }
        for env in inbox.drain(..) {
            if env.msg.phase == self.phase {
                self.apply(&env.msg);
            } else {
                self.pending.push(env.msg);
            }
        }
        self.maybe_advance(ctx, out);
        if self.finished {
            Status::Done
        } else {
            Status::Active
        }
    }
}

/// Enumerates all triangles within an edge set, filtered by `accept`
/// (each triangle reported once, canonical order). The adjacency view
/// is the shared [`EdgeListAdjacency`] from the graph-state layer.
pub(crate) fn enumerate_within(
    edges: &BTreeSet<Edge>,
    accept: impl Fn(Vertex, Vertex, Vertex) -> bool,
) -> Vec<Triangle> {
    let adj = EdgeListAdjacency::from_edges(edges.iter().copied());
    let mut out = Vec::new();
    for e in edges {
        let (u, v) = (e.u, e.v);
        let nu = adj.neighbors_of(u);
        let nv = adj.neighbors_of(v);
        let mut i = nu.partition_point(|&w| w <= v);
        let mut j = nv.partition_point(|&w| w <= v);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if accept(u, v, nu[i]) {
                        out.push(Triangle {
                            a: u,
                            b: v,
                            c: nu[i],
                        });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Enumerates open triads `(center, a, b)` (two edges present, third
/// absent) within an edge set, filtered by `accept`.
pub(crate) fn enumerate_triads_within(
    edges: &BTreeSet<Edge>,
    accept: impl Fn(Vertex, Vertex, Vertex) -> bool,
) -> Vec<(Vertex, Vertex, Vertex)> {
    let adj = EdgeListAdjacency::from_edges(edges.iter().copied());
    let mut out = Vec::new();
    for &center in adj.vertices() {
        let ns = adj.neighbors_of(center);
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if !edges.contains(&Edge::new(a, b)) && accept(center, a, b) {
                    out.push((center, a, b));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// The globally assembled output of a [`DistributedTriangles`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriangleOutput {
    /// All triangles, sorted (each enumerated by exactly one machine).
    pub triangles: Vec<Triangle>,
    /// All open triads `(center, a, b)`, sorted (only populated when
    /// `TriConfig::enumerate_triads` is set).
    pub open_triads: Vec<(Vertex, Vertex, Vertex)>,
}

/// The Theorem 5 protocol as a [`KmAlgorithm`]: graph + partition +
/// `TriConfig` in, the global [`TriangleOutput`] out.
#[derive(Debug, Clone, Copy)]
pub struct DistributedTriangles<'a> {
    /// The input graph.
    pub g: &'a CsrGraph,
    /// The vertex partition (its `k` must match the runner's).
    pub part: &'a Arc<Partition>,
    /// Protocol knobs (designation threshold, triads, proxies).
    pub cfg: TriConfig,
}

impl KmAlgorithm for DistributedTriangles<'_> {
    type Machine = KmTriangle;
    type Output = TriangleOutput;

    fn build(&self, k: usize) -> Vec<KmTriangle> {
        assert_eq!(self.part.k(), k, "partition k must match the network k");
        KmTriangle::build_all(self.g, self.part, self.cfg)
    }

    fn extract(&self, machines: Vec<KmTriangle>, _metrics: &Metrics) -> TriangleOutput {
        let mut triangles: Vec<Triangle> = machines
            .iter()
            .flat_map(|m| m.triangles.iter().copied())
            .collect();
        triangles.sort_unstable();
        let mut open_triads: Vec<(Vertex, Vertex, Vertex)> = machines
            .iter()
            .flat_map(|m| m.open_triads.iter().copied())
            .collect();
        open_triads.sort_unstable();
        TriangleOutput {
            triangles,
            open_triads,
        }
    }
}

/// Runs the Theorem 5 protocol end to end and returns the globally
/// assembled (sorted) triangle list plus transcript metrics. Thin
/// wrapper over [`run_algorithm`] with the default engine choice.
pub fn run_kmachine_triangles(
    g: &CsrGraph,
    part: &Arc<Partition>,
    cfg: TriConfig,
    net: NetConfig,
) -> Result<(Vec<Triangle>, km_core::Metrics), km_core::EngineError> {
    let outcome = run_algorithm(&DistributedTriangles { g, part, cfg }, Runner::new(net))?;
    Ok((outcome.output.triangles, outcome.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::enumerate_triangles;
    use km_core::EngineKind;
    use km_graph::generators::{classic, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net(k: usize, n: usize, seed: u64) -> NetConfig {
        NetConfig::polylog(k, n, seed).max_rounds(5_000_000)
    }

    #[test]
    fn color_scheme_shapes() {
        let s8 = ColorScheme::for_machines(8);
        assert_eq!(s8.colors(), 2);
        assert_eq!(s8.triplet_machines(), 4); // C(4,3)
        let s27 = ColorScheme::for_machines(27);
        assert_eq!(s27.colors(), 4); // C(6,3)=20 ≤ 27 < C(7,3)=35
        assert_eq!(s27.triplet_machines(), 20);
        let s1 = ColorScheme::for_machines(1);
        assert_eq!(s1.colors(), 1);
        assert_eq!(s1.triplet_machines(), 1);
    }

    #[test]
    fn every_pair_reaches_at_most_q_machines() {
        let s = ColorScheme::for_machines(64);
        let q = s.colors();
        for a in 0..q as u8 {
            for b in a..q as u8 {
                let ms = s.machines_for_pair(a, b);
                assert!(
                    !ms.is_empty() && ms.len() <= q,
                    "pair ({a},{b}): {}",
                    ms.len()
                );
                // The owner of any triangle containing the pair is reachable.
                for c in 0..q as u8 {
                    assert!(ms.contains(&s.owner_of(a, b, c)));
                }
            }
        }
    }

    #[test]
    fn enumerates_k4_exactly() {
        let g = classic::complete(4);
        let part = Arc::new(Partition::by_hash(4, 5, 3));
        let (ts, _) =
            run_kmachine_triangles(&g, &part, TriConfig::default(), net(5, 4, 1)).unwrap();
        assert_eq!(ts, enumerate_triangles(&g));
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for (n, p, k, seed) in [
            (40, 0.3, 4, 1u64),
            (60, 0.5, 9, 2),
            (50, 0.2, 16, 3),
            (30, 0.8, 7, 4),
        ] {
            let g = gnp(n, p, &mut rng);
            let part = Arc::new(Partition::by_hash(n, k, seed));
            let (ts, _) =
                run_kmachine_triangles(&g, &part, TriConfig::default(), net(k, n, seed)).unwrap();
            let want = enumerate_triangles(&g);
            assert_eq!(ts, want, "n={n} p={p} k={k}");
        }
    }

    #[test]
    fn each_triangle_enumerated_by_unique_owner() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = gnp(45, 0.4, &mut rng);
        let k = 11;
        let part = Arc::new(Partition::by_hash(45, k, 5));
        let machines = KmTriangle::build_all(&g, &part, TriConfig::default());
        let report = Runner::new(net(k, 45, 5)).run(machines).unwrap();
        let mut seen = BTreeSet::new();
        for m in &report.machines {
            for t in &m.triangles {
                assert!(seen.insert(*t), "triangle {t:?} reported twice");
            }
        }
        assert_eq!(seen.len(), enumerate_triangles(&g).len());
    }

    #[test]
    fn high_degree_designation_rule_fires() {
        // Star with a tiny threshold: the hub is high-degree, so leaves'
        // home machines must ship its edges. Add a triangle so output is
        // non-trivial.
        let mut edges: Vec<(Vertex, Vertex)> = (1..50).map(|v| (0, v)).collect();
        edges.push((1, 2));
        let g = CsrGraph::from_edges(50, &edges);
        let k = 6;
        let part = Arc::new(Partition::by_hash(50, k, 2));
        let cfg = TriConfig {
            degree_threshold: Some(5),
            enumerate_triads: false,
            use_proxies: true,
        };
        let machines = KmTriangle::build_all(&g, &part, cfg);
        let report = Runner::new(net(k, 50, 8)).run(machines).unwrap();
        let mut all: Vec<Triangle> = report
            .machines
            .iter()
            .flat_map(|m| m.triangles.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![Triangle::new(0, 1, 2)]);
        // The HD set must have propagated to every machine.
        for m in &report.machines {
            assert!(m.hd.contains(&0));
        }
    }

    #[test]
    fn open_triads_match_sequential_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = gnp(25, 0.3, &mut rng);
        let k = 8;
        let part = Arc::new(Partition::by_hash(25, k, 4));
        let cfg = TriConfig {
            degree_threshold: None,
            enumerate_triads: true,
            use_proxies: true,
        };
        let machines = KmTriangle::build_all(&g, &part, cfg);
        let report = Runner::new(net(k, 25, 6)).run(machines).unwrap();
        let mut got: Vec<(Vertex, Vertex, Vertex)> = report
            .machines
            .iter()
            .flat_map(|m| m.open_triads.iter().copied())
            .collect();
        got.sort_unstable();
        let want = crate::triads::enumerate_open_triads(&g);
        assert_eq!(got, want);
    }

    #[test]
    fn proxyless_ablation_is_still_exact() {
        // Disabling proxies changes the routing pattern, not correctness.
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let g = gnp(45, 0.4, &mut rng);
        let k = 9;
        let part = Arc::new(Partition::by_hash(45, k, 6));
        let cfg = TriConfig {
            degree_threshold: None,
            enumerate_triads: false,
            use_proxies: false,
        };
        let (ts, _) = run_kmachine_triangles(&g, &part, cfg, net(k, 45, 7)).unwrap();
        assert_eq!(ts, enumerate_triangles(&g));
    }

    #[test]
    fn parallel_engine_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let g = gnp(50, 0.3, &mut rng);
        let k = 9;
        let part = Arc::new(Partition::by_hash(50, k, 7));
        let netc = net(k, 50, 12);
        let seq = Runner::new(netc)
            .engine(EngineKind::Sequential)
            .run(KmTriangle::build_all(&g, &part, TriConfig::default()))
            .unwrap();
        let par = Runner::new(netc)
            .engine(EngineKind::Parallel { threads: 4 })
            .run(KmTriangle::build_all(&g, &part, TriConfig::default()))
            .unwrap();
        assert_eq!(seq.metrics, par.metrics);
        for (a, b) in seq.machines.iter().zip(&par.machines) {
            assert_eq!(a.triangles, b.triangles);
        }
    }

    #[test]
    fn single_machine_runs_inline() {
        let g = classic::complete(6);
        let part = Arc::new(Partition::round_robin(6, 1));
        let (ts, metrics) =
            run_kmachine_triangles(&g, &part, TriConfig::default(), net(1, 6, 0)).unwrap();
        assert_eq!(ts.len(), 20);
        assert_eq!(metrics.total_msgs(), 0);
    }

    #[test]
    fn empty_graph_enumerates_nothing() {
        let g = CsrGraph::from_edges(10, &[]);
        let part = Arc::new(Partition::by_hash(10, 4, 1));
        let (ts, _) =
            run_kmachine_triangles(&g, &part, TriConfig::default(), net(4, 10, 2)).unwrap();
        assert!(ts.is_empty());
    }

    proptest::proptest! {
        #[test]
        fn tri_msgs_roundtrip_the_wire(
            n in 2usize..1_000_000,
            a in 0u32..1_000_000,
            b in 0u32..1_000_000,
            phase in 0u8..4,
        ) {
            let n32 = n as u32;
            let (a, b) = (a % n32, b % n32);
            let e = if a == b {
                Edge::new(a, (a + 1) % n32.max(2))
            } else {
                Edge::new(a, b)
            };
            km_core::assert_roundtrip(&TriMsg::hd(n, phase, a));
            km_core::assert_roundtrip(&TriMsg::to_proxy(n, phase, e));
            km_core::assert_roundtrip(&TriMsg::to_machine(n, phase, e));
            km_core::assert_roundtrip(&TriMsg::flush(phase));
        }
    }
}
