//! Open triads: triples of vertices with exactly two edges.
//!
//! Section 1.2: "Our bounds for triangle enumeration also apply to the
//! problem of enumerating all the open triads" — friend-recommendation
//! structure in social networks. The distributed enumeration rides on the
//! same color-partition protocol ([`crate::kmachine::TriConfig`] with
//! `enumerate_triads`); this module provides the sequential oracle and
//! counting identities.

use km_graph::{CsrGraph, Vertex};

/// Enumerates all open triads as `(center, a, b)` with `a < b`:
/// edges `{center,a}` and `{center,b}` present, `{a,b}` absent.
///
/// `O(Σ deg²)` — each triad has a unique center, so each is reported once.
pub fn enumerate_open_triads(g: &CsrGraph) -> Vec<(Vertex, Vertex, Vertex)> {
    let mut out = Vec::new();
    for center in g.vertices() {
        let ns = g.neighbors(center);
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if !g.has_edge(a, b) {
                    out.push((center, a, b));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Counts open triads via the identity
/// `#triads = Σ_v C(deg v, 2) − 3·#triangles`
/// (every triangle contributes a closed wedge at each of its 3 vertices).
pub fn count_open_triads(g: &CsrGraph) -> usize {
    let wedges: usize = g
        .vertices()
        .map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum();
    wedges - 3 * crate::seq::count_triangles(g)
}

/// The global clustering coefficient `3·triangles / wedges` (a standard
/// consumer of triangle + triad counts; used by the social-network
/// example).
pub fn global_clustering_coefficient(g: &CsrGraph) -> f64 {
    let wedges: usize = g
        .vertices()
        .map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * crate::seq::count_triangles(g) as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use km_graph::generators::{classic, gnp};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn star_is_all_triads() {
        let g = classic::star(6); // hub 0, leaves 1..5
        let triads = enumerate_open_triads(&g);
        assert_eq!(triads.len(), 10); // C(5,2)
        assert_eq!(count_open_triads(&g), 10);
        assert!(triads.iter().all(|&(c, _, _)| c == 0));
    }

    #[test]
    fn complete_graph_has_no_triads() {
        let g = classic::complete(7);
        assert!(enumerate_open_triads(&g).is_empty());
        assert_eq!(count_open_triads(&g), 0);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_triads() {
        let g = classic::path(5);
        // Each internal vertex centers exactly one triad.
        assert_eq!(count_open_triads(&g), 3);
    }

    #[test]
    fn clustering_coefficient_of_gnp_near_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = gnp(300, 0.2, &mut rng);
        let cc = global_clustering_coefficient(&g);
        assert!((cc - 0.2).abs() < 0.05, "cc={cc}");
    }

    proptest! {
        /// Enumeration length equals the counting identity.
        #[test]
        fn identity_holds(edges in proptest::collection::vec((0u32..18, 0u32..18), 0..120)) {
            let g = CsrGraph::from_edges(18, &edges);
            prop_assert_eq!(enumerate_open_triads(&g).len(), count_open_triads(&g));
        }
    }
}
