//! Offline shim of `serde_derive`: a dependency-free `#[derive(Serialize)]`
//! for **plain structs with named fields and no generics** — the only
//! shape this workspace derives. Hand-parses the token stream instead of
//! using `syn`/`quote` (unavailable offline).

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (a `to_value(&self) -> Value`
/// conversion) by emitting one JSON object entry per named field.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, body) = parse_struct(&tokens);
    let fields = parse_named_fields(&body);

    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();

    format!(
        "impl serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> serde::Value {{\n\
         \x20       serde::Value::Object(vec![{entries}])\n\
         \x20   }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Finds `struct <Name> { ... }`, skipping attributes and visibility.
/// Panics with a clear message on shapes the shim does not support
/// (enums, tuple structs, generics).
fn parse_struct(tokens: &[TokenTree]) -> (String, Vec<TokenTree>) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip `#[...]`.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Skip `(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive shim: expected struct name, got {other:?}"),
                };
                match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return (name, g.stream().into_iter().collect());
                    }
                    other => panic!(
                        "serde_derive shim supports only non-generic structs \
                         with named fields; got {other:?} after `struct {name}`"
                    ),
                }
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("serde_derive shim supports only structs, not {id}")
            }
            _ => i += 1,
        }
    }
    panic!("serde_derive shim: no `struct` found in derive input")
}

/// Extracts field names from a named-field body: for each top-level
/// comma-separated item, the identifier immediately before the first
/// top-level `:`.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip field attributes and visibility.
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = body.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= body.len() {
            break;
        }
        match &body[i] {
            TokenTree::Ident(name) => {
                match body.get(i + 1) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        fields.push(name.to_string())
                    }
                    other => panic!(
                        "serde_derive shim: expected `:` after field `{name}`, got {other:?}"
                    ),
                }
                // Skip the type: everything up to the next top-level comma.
                // The `>` of a `->` (fn-pointer types) is not a closing
                // angle bracket; its `-` arrives with joint spacing.
                i += 2;
                let mut depth = 0i32;
                let mut after_joint_minus = false;
                while i < body.len() {
                    let mut joint_minus = false;
                    match &body[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' && !after_joint_minus => {
                            depth -= 1
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        TokenTree::Punct(p)
                            if p.as_char() == '-' && p.spacing() == Spacing::Joint =>
                        {
                            joint_minus = true
                        }
                        _ => {}
                    }
                    after_joint_minus = joint_minus;
                    i += 1;
                }
            }
            other => panic!("serde_derive shim: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}
