//! Offline shim for the `serde` subset this workspace uses:
//! `#[derive(Serialize)]` on plain structs, consumed by the
//! `serde_json::to_string_pretty` shim.
//!
//! Instead of serde's visitor architecture, [`Serialize`] converts a
//! value into a tiny owned JSON [`Value`] tree — entirely sufficient for
//! the experiment tables and metrics this workspace serializes, and
//! swappable for real serde without touching call sites.

pub use serde_derive::Serialize;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite or non-finite float (non-finite prints as `null`).
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with field order preserved.
    Object(Vec<(String, Value)>),
}

/// Conversion into the shim's JSON [`Value`] model (the serde shim's
/// analogue of `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $as)
            }
        }
    )*};
}
impl_ser_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64,
    u64 => UInt as u64, usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64,
    f32 => Float as f64, f64 => Float as f64,
);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
