//! Offline shim for `rand_chacha`: ChaCha stream ciphers as RNGs.
//!
//! Implements the genuine ChaCha block function (D. J. Bernstein) with a
//! 64-bit block counter and zero nonce. The keystream is a fixed,
//! documented function of the 32-byte seed — everything the
//! deterministic-replay story of this workspace needs — though it is not
//! guaranteed bit-identical to the crates.io `rand_chacha` keystream.

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `R` double-rounds over the 16-word state.
fn block<const R: usize>(key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut s: [u32; 16] = [
        SIGMA[0],
        SIGMA[1],
        SIGMA[2],
        SIGMA[3],
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let init = s;
    for _ in 0..R {
        // Column round.
        quarter(&mut s, 0, 4, 8, 12);
        quarter(&mut s, 1, 5, 9, 13);
        quarter(&mut s, 2, 6, 10, 14);
        quarter(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut s, 0, 5, 10, 15);
        quarter(&mut s, 1, 6, 11, 12);
        quarter(&mut s, 2, 7, 8, 13);
        quarter(&mut s, 3, 4, 9, 14);
    }
    for (o, (x, y)) in out.iter_mut().zip(s.iter().zip(init.iter())) {
        *o = x.wrapping_add(*y);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread word in `buf`; 16 means exhausted.
            idx: usize,
        }

        impl $name {
            #[inline]
            fn refill(&mut self) {
                block::<{ $double_rounds }>(&self.key, self.counter, &mut self.buf);
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    buf: [0; 16],
                    idx: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    4,
    "ChaCha with 8 rounds (4 double-rounds): the workspace's fast deterministic RNG."
);
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds (6 double-rounds).");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds (10 double-rounds).");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a1 = ChaCha8Rng::seed_from_u64(1);
        let mut a2 = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs1: Vec<u64> = (0..100).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..100).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn counter_advances_between_blocks() {
        let key = [7u32; 8];
        let (mut b0, mut b1) = ([0u32; 16], [0u32; 16]);
        block::<4>(&key, 0, &mut b0);
        block::<4>(&key, 1, &mut b1);
        assert_ne!(b0, b1, "distinct counters must yield distinct blocks");
    }

    #[test]
    fn word_stream_spans_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        // 40 u64s = 80 words = 5 blocks; just exercise the refill path.
        let v: Vec<u64> = (0..40).map(|_| r.next_u64()).collect();
        assert_eq!(v.len(), 40);
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        assert!(distinct.len() > 35, "keystream should not repeat");
    }
}
