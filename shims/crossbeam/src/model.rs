//! A cooperative model-checking scheduler for the channel/thread shims.
//!
//! When a model session is installed (via [`explore`] / [`replay`]), every
//! channel created by `channel::bounded` and every thread spawned by
//! `thread::scope` routes through a virtual scheduler: exactly one task
//! is runnable at a time, every channel operation is a yield point, and
//! the schedule — which task runs at each yield — is chosen by a seeded
//! PRNG with DFS-style backtracking over the first `dfs_depth` decision
//! points. Runs are fully deterministic given a [`ScheduleId`], so any
//! failing interleaving replays bit-for-bit.
//!
//! Time is virtual: `recv_timeout` deadlines are measured in ticks of a
//! logical clock that advances **only at quiescence** — when no task can
//! make progress without it. A quiescent step wakes spin-parked tasks
//! (`utils::Backoff::snooze`) and advances the clock by one tick, or
//! jumps straight to the earliest deadline when nothing is spinning.
//! This means a timeout can only fire on a schedule where the awaited
//! message genuinely cannot arrive first — healthy schedules never see
//! spurious timeouts, no matter how adversarial the interleaving.
//!
//! Two failure modes poison a schedule: *deadlock* (every task blocked,
//! no deadline to jump to) and *step limit* (livelock guard). Poisoning
//! wakes every task; each unwinds with a private `ModelAbort` payload at
//! its next scheduler interaction, and the violation surfaces from
//! [`explore`] with its replayable schedule id.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

thread_local! {
    static CURRENT: RefCell<Option<Arc<Session>>> = const { RefCell::new(None) };
}

/// The session installed on the calling thread, if any. Channel and
/// thread shims consult this to decide real-vs-model dispatch.
pub(crate) fn current() -> Option<Arc<Session>> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(s: Option<Arc<Session>>) {
    CURRENT.with(|c| *c.borrow_mut() = s);
}

/// Clears the thread-local session even if the guarded code unwinds.
struct TlGuard;

impl Drop for TlGuard {
    fn drop(&mut self) {
        set_current(None);
    }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Panic payload that unwinds a task out of a poisoned schedule. Never
/// escapes the model runtime: task wrappers catch it and exit cleanly.
struct ModelAbort;

/// Why a schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Every live task is blocked and no deadline exists to jump to.
    Deadlock {
        /// One human-readable line per live task describing its wait.
        tasks: Vec<String>,
    },
    /// The schedule exceeded `max_steps` yield points (livelock guard).
    StepLimit { steps: u64 },
    /// A task panicked (assertion failure, engine bug, ...).
    Panic { message: String },
    /// The checked closure returned `Err` — a harness invariant failed.
    Check { message: String },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { tasks } => {
                write!(f, "deadlock: no runnable task and no pending deadline")?;
                for t in tasks {
                    write!(f, "\n  {t}")?;
                }
                Ok(())
            }
            Violation::StepLimit { steps } => {
                write!(
                    f,
                    "step limit exceeded after {steps} yield points (livelock?)"
                )
            }
            Violation::Panic { message } => write!(f, "task panicked: {message}"),
            Violation::Check { message } => write!(f, "invariant violated: {message}"),
        }
    }
}

/// Identifies one schedule: the exploration seed plus the run index.
/// Formats as `seed:index` — the handle `km-check --replay` accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleId {
    pub seed: u64,
    pub index: u64,
}

impl fmt::Display for ScheduleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.seed, self.index)
    }
}

impl ScheduleId {
    /// Parses a `seed:index` handle as printed by [`fmt::Display`].
    pub fn parse(s: &str) -> Option<ScheduleId> {
        let (seed, index) = s.split_once(':')?;
        Some(ScheduleId {
            seed: seed.trim().parse().ok()?,
            index: index.trim().parse().ok()?,
        })
    }
}

/// A failing schedule: the replay handle plus what went wrong.
#[derive(Debug, Clone)]
pub struct Failure {
    pub schedule: ScheduleId,
    pub violation: Violation,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule {} failed: {} (replay with `km-check --replay {}`)",
            self.schedule, self.violation, self.schedule
        )
    }
}

/// Summary of a successful exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Schedules executed to completion.
    pub schedules: u64,
    /// Largest number of scheduling decision points seen in one run.
    pub max_decision_points: u64,
    /// Times the bounded-depth DFS frontier was exhausted and restarted
    /// with fresh random tails.
    pub dfs_restarts: u64,
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Base seed; combined with the run index for per-run tail RNGs.
    pub seed: u64,
    /// Number of schedules to run.
    pub schedules: u64,
    /// DFS systematically backtracks over the first this-many decision
    /// points; later decisions come from the per-run tail RNG.
    pub dfs_depth: usize,
    /// Yield-point budget per schedule before declaring livelock.
    pub max_steps: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            seed: 0,
            schedules: 256,
            dfs_depth: 24,
            max_steps: 1 << 20,
        }
    }
}

/// What a blocked task is waiting for (used for targeted wakeups and
/// deadlock diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitKind {
    /// Waiting for a message or disconnect on channel `id`.
    Recv(usize),
    /// Waiting for queue space or disconnect on channel `id`.
    Send(usize),
    /// Waiting for a set of tasks to finish (scope teardown).
    Join,
}

#[derive(Debug, Clone, Copy)]
enum TaskStatus {
    /// Eligible to be scheduled.
    Runnable,
    /// Blocked on `kind`, optionally until virtual `deadline`.
    Blocked {
        kind: WaitKind,
        deadline: Option<u64>,
    },
    /// Spin-parked in `Backoff::snooze`; woken by any progress or by a
    /// quiescent clock tick.
    Spin,
    Finished,
}

struct Task {
    status: TaskStatus,
    /// Set when this task's `Blocked` deadline fired; consumed by
    /// `recv_timeout` to return `Timeout`.
    timed_out: bool,
}

struct Sched {
    tasks: Vec<Task>,
    /// The one task allowed to run. Invariant: all other live tasks are
    /// parked on the session condvar (or about to be).
    active: usize,
    /// Virtual clock in milliseconds; advances only at quiescence.
    clock: u64,
    steps: u64,
    max_steps: u64,
    /// Scheduling decision points taken so far this run (arity > 1 only).
    decisions: u64,
    /// DFS prefix: forced choices for the first decision points.
    prefix: Vec<(u32, u32)>,
    /// Choices actually taken within the first `dfs_depth` decision
    /// points, with their arities — the raw material for backtracking.
    observed: Vec<(u32, u32)>,
    dfs_depth: usize,
    /// splitmix64 state for decisions past the prefix.
    rng: u64,
    violation: Option<Violation>,
    next_chan: usize,
}

/// One model-checked run: scheduler state + wakeup condvar.
pub(crate) struct Session {
    m: Mutex<Sched>,
    cv: Condvar,
}

/// `true` while a hand-off found no runnable task and no way to make one.
struct DeadEnd;

impl Session {
    fn new(cfg: &ModelConfig, prefix: Vec<(u32, u32)>, tail_seed: u64) -> Session {
        Session {
            m: Mutex::new(Sched {
                tasks: vec![Task {
                    status: TaskStatus::Runnable,
                    timed_out: false,
                }],
                active: 0,
                clock: 0,
                steps: 0,
                max_steps: cfg.max_steps,
                decisions: 0,
                prefix,
                observed: Vec::new(),
                dfs_depth: cfg.dfs_depth,
                rng: tail_seed,
                violation: None,
                next_chan: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Locks the scheduler, tolerating mutex poisoning: a task that
    /// panicked while never holding this lock still poisons it on some
    /// platforms' unwind paths, and bookkeeping must continue.
    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort(st: MutexGuard<'_, Sched>) -> ! {
        drop(st);
        panic::resume_unwind(Box::new(ModelAbort));
    }

    pub(crate) fn next_chan_id(&self) -> usize {
        let mut st = self.lock();
        let id = st.next_chan;
        st.next_chan += 1;
        id
    }

    /// Picks the next task among runnables, recording a decision point
    /// when there is a real choice. `None` when nothing is runnable.
    fn choose(st: &mut Sched) -> Option<usize> {
        let runnable: Vec<usize> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, TaskStatus::Runnable))
            .map(|(i, _)| i)
            .collect();
        match runnable.len() {
            0 => None,
            1 => Some(runnable[0]),
            n => {
                let arity = n as u32;
                let d = st.decisions as usize;
                st.decisions += 1;
                let pick = if d < st.prefix.len() {
                    st.prefix[d].0.min(arity - 1)
                } else {
                    (splitmix64(&mut st.rng) % u64::from(arity)) as u32
                };
                if d < st.dfs_depth {
                    st.observed.push((pick, arity));
                }
                Some(runnable[pick as usize])
            }
        }
    }

    /// Poisons the schedule, wakes everyone, and leaves `st.violation`
    /// set so every task aborts at its next scheduler interaction.
    fn poison(&self, st: &mut Sched, v: Violation) {
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        self.cv.notify_all();
    }

    /// Advances virtual time at quiescence. Returns `Err(DeadEnd)` when
    /// nothing is spinning and no deadline exists — a true deadlock.
    fn quiesce(st: &mut Sched) -> Result<(), DeadEnd> {
        let spinning = st
            .tasks
            .iter()
            .any(|t| matches!(t.status, TaskStatus::Spin));
        if spinning {
            // One logical tick: give every spin-parked poller another
            // look (NACK pacing counters advance this way) and let any
            // now-expired deadline fire alongside.
            st.clock += 1;
            for t in &mut st.tasks {
                if matches!(t.status, TaskStatus::Spin) {
                    t.status = TaskStatus::Runnable;
                }
            }
        } else {
            let earliest = st
                .tasks
                .iter()
                .filter_map(|t| match t.status {
                    TaskStatus::Blocked {
                        deadline: Some(d), ..
                    } => Some(d),
                    _ => None,
                })
                .min();
            match earliest {
                Some(d) => st.clock = st.clock.max(d),
                None => return Err(DeadEnd),
            }
        }
        let now = st.clock;
        for t in &mut st.tasks {
            if let TaskStatus::Blocked {
                deadline: Some(d), ..
            } = t.status
            {
                if d <= now {
                    t.status = TaskStatus::Runnable;
                    t.timed_out = true;
                }
            }
        }
        Ok(())
    }

    fn deadlock_report(st: &Sched) -> Violation {
        let tasks = st
            .tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                TaskStatus::Blocked { kind, deadline } => {
                    let what = match kind {
                        WaitKind::Recv(c) => format!("recv on channel {c}"),
                        WaitKind::Send(c) => format!("send on channel {c} (full)"),
                        WaitKind::Join => "join of scoped tasks".to_string(),
                    };
                    let dl = match deadline {
                        Some(d) => format!(" (deadline tick {d})"),
                        None => String::new(),
                    };
                    Some(format!("task {i}: blocked on {what}{dl}"))
                }
                _ => None,
            })
            .collect();
        Violation::Deadlock { tasks }
    }

    /// Hands the active slot to the next runnable task, advancing
    /// virtual time if needed. Does not wait.
    fn hand_off(&self, st: &mut Sched) -> Result<(), DeadEnd> {
        loop {
            if let Some(next) = Self::choose(st) {
                st.active = next;
                self.cv.notify_all();
                return Ok(());
            }
            if st
                .tasks
                .iter()
                .all(|t| matches!(t.status, TaskStatus::Finished))
            {
                // Everyone done: nothing to schedule, nothing to wake.
                return Ok(());
            }
            Self::quiesce(st)?;
        }
    }

    /// Parks the calling task until it is the active task again. Aborts
    /// on poison.
    fn wait_until_active(&self, mut st: MutexGuard<'_, Sched>, me: usize) {
        loop {
            if st.violation.is_some() {
                Self::abort(st);
            }
            if st.active == me && matches!(st.tasks[me].status, TaskStatus::Runnable) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A yield point for the (runnable) active task: counts a step,
    /// possibly switches to another runnable task, returns when the
    /// caller is active again.
    fn op_yield(&self) {
        let mut st = self.lock();
        if st.violation.is_some() {
            Self::abort(st);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let v = Violation::StepLimit { steps: st.steps };
            self.poison(&mut st, v);
            Self::abort(st);
        }
        let me = st.active;
        // `choose` always succeeds here: the caller itself is runnable.
        if let Some(next) = Self::choose(&mut st) {
            if next != me {
                st.active = next;
                self.cv.notify_all();
                self.wait_until_active(st, me);
            }
        }
    }

    /// Called with the caller's status already set to `Blocked`/`Spin`:
    /// hands off to another task (or declares deadlock) and parks until
    /// the caller is woken *and* scheduled.
    fn reschedule(&self, mut st: MutexGuard<'_, Sched>, me: usize) {
        if st.violation.is_some() {
            Self::abort(st);
        }
        if self.hand_off(&mut st).is_err() {
            let v = Self::deadlock_report(&st);
            self.poison(&mut st, v);
            Self::abort(st);
        }
        self.wait_until_active(st, me);
    }

    /// `Backoff::snooze` in model mode: park until any global progress
    /// (message moved, disconnect) or a quiescent clock tick.
    pub(crate) fn spin_park(&self) {
        let mut st = self.lock();
        if st.violation.is_some() {
            Self::abort(st);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let v = Violation::StepLimit { steps: st.steps };
            self.poison(&mut st, v);
            Self::abort(st);
        }
        let me = st.active;
        st.tasks[me].status = TaskStatus::Spin;
        self.reschedule(st, me);
    }

    /// Records progress: wakes every spin-parked task plus every task
    /// blocked on `kind`. Callers hold the lock; no yield happens here.
    fn progress(st: &mut Sched, kind: WaitKind) {
        for t in &mut st.tasks {
            match t.status {
                TaskStatus::Spin => t.status = TaskStatus::Runnable,
                TaskStatus::Blocked { kind: k, .. } if k == kind => {
                    t.status = TaskStatus::Runnable;
                }
                _ => {}
            }
        }
    }

    /// Registers a new task (spawned by the currently-active task).
    pub(crate) fn register_task(&self) -> usize {
        let mut st = self.lock();
        st.tasks.push(Task {
            status: TaskStatus::Runnable,
            timed_out: false,
        });
        st.tasks.len() - 1
    }

    /// A freshly-spawned task parks here until first scheduled.
    pub(crate) fn first_wait(&self, id: usize) {
        let st = self.lock();
        self.wait_until_active(st, id);
    }

    /// Marks `id` finished and hands off. Never unwinds: this runs in
    /// task wrappers after `catch_unwind`, including during poison.
    pub(crate) fn finish_task(&self, id: usize) {
        let mut st = self.lock();
        st.tasks[id].status = TaskStatus::Finished;
        Self::progress(&mut st, WaitKind::Join);
        if st.violation.is_some() {
            self.cv.notify_all();
            return;
        }
        if st.active == id && self.hand_off(&mut st).is_err() {
            let v = Self::deadlock_report(&st);
            self.poison(&mut st, v);
        }
    }

    /// Blocks the caller until every task in `ids` has finished. Used
    /// by the scope guard before std's native join. Returns (instead of
    /// unwinding) on poison: the guard may run during unwinding, and
    /// the native join below it completes because every task exits.
    pub(crate) fn await_tasks(&self, ids: &[usize]) {
        loop {
            let mut st = self.lock();
            if st.violation.is_some() {
                return;
            }
            if ids
                .iter()
                .all(|&i| matches!(st.tasks[i].status, TaskStatus::Finished))
            {
                return;
            }
            let me = st.active;
            st.tasks[me].status = TaskStatus::Blocked {
                kind: WaitKind::Join,
                deadline: None,
            };
            self.reschedule(st, me);
        }
    }
}

// ---------------------------------------------------------------------
// Model-mode channels
// ---------------------------------------------------------------------

struct Inner<T> {
    q: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// A model-checked bounded channel. All operations take the session
/// lock first, then the (uncontended) channel lock; the channel lock is
/// never held across a park.
pub(crate) struct MChan<T> {
    id: usize,
    cap: usize,
    sess: Arc<Session>,
    inner: Mutex<Inner<T>>,
}

impl<T> MChan<T> {
    fn inner(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

pub(crate) struct ModelSender<T>(Arc<MChan<T>>);

pub(crate) struct ModelReceiver<T>(Arc<MChan<T>>);

pub(crate) fn model_bounded<T>(
    sess: Arc<Session>,
    cap: usize,
) -> (ModelSender<T>, ModelReceiver<T>) {
    assert!(
        cap > 0,
        "model-mode channels do not support rendezvous (capacity 0)"
    );
    let id = sess.next_chan_id();
    let chan = Arc::new(MChan {
        id,
        cap,
        sess,
        inner: Mutex::new(Inner {
            q: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
    });
    (ModelSender(chan.clone()), ModelReceiver(chan))
}

impl<T> Clone for ModelSender<T> {
    fn clone(&self) -> Self {
        let _st = self.0.sess.lock();
        self.0.inner().senders += 1;
        ModelSender(self.0.clone())
    }
}

impl<T> Drop for ModelSender<T> {
    fn drop(&mut self) {
        // Pure bookkeeping — never yields, never unwinds: drops run
        // during poison unwinding too.
        let mut st = self.0.sess.lock();
        let mut inner = self.0.inner();
        inner.senders -= 1;
        if inner.senders == 0 {
            Session::progress(&mut st, WaitKind::Recv(self.0.id));
            self.0.sess.cv.notify_all();
        }
    }
}

impl<T> Drop for ModelReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.0.sess.lock();
        let mut inner = self.0.inner();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            Session::progress(&mut st, WaitKind::Send(self.0.id));
            self.0.sess.cv.notify_all();
        }
    }
}

impl<T> ModelSender<T> {
    pub(crate) fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let c = &self.0;
        c.sess.op_yield();
        let mut slot = Some(msg);
        loop {
            let mut st = c.sess.lock();
            if st.violation.is_some() {
                Session::abort(st);
            }
            let mut inner = c.inner();
            if inner.receivers == 0 {
                return Err(SendError(slot.take().unwrap_or_else(|| unreachable!())));
            }
            if inner.q.len() < c.cap {
                inner
                    .q
                    .push_back(slot.take().unwrap_or_else(|| unreachable!()));
                drop(inner);
                Session::progress(&mut st, WaitKind::Recv(c.id));
                c.sess.cv.notify_all();
                return Ok(());
            }
            drop(inner);
            let me = st.active;
            st.tasks[me].status = TaskStatus::Blocked {
                kind: WaitKind::Send(c.id),
                deadline: None,
            };
            c.sess.reschedule(st, me);
        }
    }

    pub(crate) fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let c = &self.0;
        c.sess.op_yield();
        let mut st = c.sess.lock();
        if st.violation.is_some() {
            Session::abort(st);
        }
        let mut inner = c.inner();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.q.len() < c.cap {
            inner.q.push_back(msg);
            drop(inner);
            Session::progress(&mut st, WaitKind::Recv(c.id));
            c.sess.cv.notify_all();
            Ok(())
        } else {
            Err(TrySendError::Full(msg))
        }
    }
}

impl<T> ModelReceiver<T> {
    pub(crate) fn recv(&self) -> Result<T, RecvError> {
        match self.recv_deadline(None) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError),
            // No deadline was armed, so Timeout is impossible.
            Err(RecvTimeoutError::Timeout) => unreachable!(),
        }
    }

    pub(crate) fn try_recv(&self) -> Result<T, TryRecvError> {
        let c = &self.0;
        c.sess.op_yield();
        let mut st = c.sess.lock();
        if st.violation.is_some() {
            Session::abort(st);
        }
        let mut inner = c.inner();
        if let Some(v) = inner.q.pop_front() {
            drop(inner);
            Session::progress(&mut st, WaitKind::Send(c.id));
            c.sess.cv.notify_all();
            Ok(v)
        } else if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        // Virtual-time deadline: computed once at entry, in ticks.
        let ms = (timeout.as_millis() as u64).max(1);
        self.recv_deadline(Some(ms))
    }

    fn recv_deadline(&self, after_ms: Option<u64>) -> Result<T, RecvTimeoutError> {
        let c = &self.0;
        c.sess.op_yield();
        let mut deadline: Option<u64> = None;
        loop {
            let mut st = c.sess.lock();
            if st.violation.is_some() {
                Session::abort(st);
            }
            if let (Some(ms), None) = (after_ms, deadline) {
                deadline = Some(st.clock + ms);
            }
            let me = st.active;
            let mut inner = c.inner();
            if let Some(v) = inner.q.pop_front() {
                drop(inner);
                st.tasks[me].timed_out = false;
                Session::progress(&mut st, WaitKind::Send(c.id));
                c.sess.cv.notify_all();
                return Ok(v);
            }
            if inner.senders == 0 {
                st.tasks[me].timed_out = false;
                return Err(RecvTimeoutError::Disconnected);
            }
            drop(inner);
            if st.tasks[me].timed_out {
                st.tasks[me].timed_out = false;
                return Err(RecvTimeoutError::Timeout);
            }
            st.tasks[me].status = TaskStatus::Blocked {
                kind: WaitKind::Recv(c.id),
                deadline,
            };
            c.sess.reschedule(st, me);
        }
    }
}

// ---------------------------------------------------------------------
// Scope integration
// ---------------------------------------------------------------------

/// Tracks the model tasks spawned under one `thread::scope` call so the
/// scope can drain them through the scheduler *before* std's native
/// join (which would otherwise block outside scheduler control).
pub(crate) struct ScopeTracker {
    pub(crate) sess: Arc<Session>,
    ids: Mutex<Vec<usize>>,
}

impl ScopeTracker {
    pub(crate) fn new(sess: Arc<Session>) -> ScopeTracker {
        ScopeTracker {
            sess,
            ids: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn add(&self, id: usize) {
        self.ids.lock().unwrap_or_else(|e| e.into_inner()).push(id);
    }

    /// Blocks (cooperatively) until every tracked task finished.
    pub(crate) fn drain(&self) {
        let ids = self.ids.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if !ids.is_empty() {
            self.sess.await_tasks(&ids);
        }
    }
}

/// Runs the body of a spawned model task: installs the session on the
/// OS thread, parks until first scheduled, runs `f`, marks the task
/// finished, and re-raises non-model panics so std's scope sees them.
pub(crate) fn run_task<T>(sess: Arc<Session>, id: usize, f: impl FnOnce() -> T) -> T {
    set_current(Some(sess.clone()));
    let _tl = TlGuard;
    sess.first_wait(id);
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    sess.finish_task(id);
    match r {
        Ok(v) => v,
        Err(p) => panic::resume_unwind(p),
    }
}

// ---------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

enum RunOutcome {
    Ok,
    Violated(Violation),
}

/// Executes `f` once under a fresh session with the given DFS prefix
/// and tail seed. Returns the outcome plus the observed decision trace
/// (for backtracking) and the total decision count.
fn run_one<F>(
    cfg: &ModelConfig,
    prefix: &[(u32, u32)],
    tail_seed: u64,
    f: &F,
) -> (RunOutcome, Vec<(u32, u32)>, u64)
where
    F: Fn() -> Result<(), String> + Sync,
{
    let sess = Arc::new(Session::new(cfg, prefix.to_vec(), tail_seed));
    let sess2 = sess.clone();
    let body: std::thread::Result<Result<(), String>> = std::thread::scope(|s| {
        let h = s.spawn(move || {
            set_current(Some(sess2.clone()));
            let _tl = TlGuard;
            let r = panic::catch_unwind(AssertUnwindSafe(f));
            sess2.finish_task(0);
            r
        });
        h.join().unwrap_or_else(|_| {
            // The wrapper itself cannot panic (everything is caught),
            // but stay defensive rather than take down the explorer.
            Err(Box::new("model task-0 wrapper panicked".to_string()))
        })
    });
    let st = sess.lock();
    let observed = st.observed.clone();
    let decisions = st.decisions;
    let violation = st.violation.clone();
    drop(st);
    let outcome = if let Some(v) = violation {
        RunOutcome::Violated(v)
    } else {
        match body {
            Err(p) => RunOutcome::Violated(Violation::Panic {
                message: panic_message(p.as_ref()),
            }),
            Ok(Err(msg)) => RunOutcome::Violated(Violation::Check { message: msg }),
            Ok(Ok(())) => RunOutcome::Ok,
        }
    };
    (outcome, observed, decisions)
}

/// Classic DFS backtrack: increments the last incrementable choice of
/// the observed trace; returns `None` when the bounded space is spent.
fn next_prefix(observed: &[(u32, u32)]) -> Option<Vec<(u32, u32)>> {
    let mut p: Vec<(u32, u32)> = observed.to_vec();
    while let Some(&(choice, arity)) = p.last() {
        if choice + 1 < arity {
            let last = p.len() - 1;
            p[last] = (choice + 1, arity);
            return Some(p);
        }
        p.pop();
    }
    None
}

fn tail_seed_for(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f);
    splitmix64(&mut s)
}

/// Runs `f` under `cfg.schedules` distinct schedules. The first
/// portion of each schedule is driven by DFS backtracking over the
/// first `dfs_depth` decision points; the rest by a per-run seeded RNG.
/// Returns the first failing schedule (with its replay handle), or a
/// summary report when every schedule passes.
///
/// `f` must be deterministic apart from scheduling: same decisions in,
/// same behaviour out. It runs once per schedule on a fresh task 0 and
/// may spawn threads and create channels through the shim as usual.
pub fn explore<F>(cfg: &ModelConfig, f: F) -> Result<Report, Box<Failure>>
where
    F: Fn() -> Result<(), String> + Sync,
{
    assert!(
        current().is_none(),
        "explore() cannot be nested inside a model session"
    );
    let mut report = Report::default();
    let mut prefix: Vec<(u32, u32)> = Vec::new();
    for index in 0..cfg.schedules {
        let (outcome, observed, decisions) =
            run_one(cfg, &prefix, tail_seed_for(cfg.seed, index), &f);
        report.schedules += 1;
        report.max_decision_points = report.max_decision_points.max(decisions);
        if let RunOutcome::Violated(violation) = outcome {
            return Err(Box::new(Failure {
                schedule: ScheduleId {
                    seed: cfg.seed,
                    index,
                },
                violation,
            }));
        }
        match next_prefix(&observed) {
            Some(p) => prefix = p,
            None => {
                // Bounded DFS exhausted: restart from the root. The
                // per-index tail seeds keep later runs distinct.
                report.dfs_restarts += 1;
                prefix = Vec::new();
            }
        }
    }
    Ok(report)
}

/// Replays the single schedule identified by `id` (as printed in a
/// [`Failure`]). Internally re-runs the DFS from run 0 to rebuild the
/// exact prefix — exploration is deterministic, so run `index` is
/// bit-identical to the original. Returns `Ok` if the schedule now
/// passes, or the (re-)failure.
pub fn replay<F>(cfg: &ModelConfig, id: ScheduleId, f: F) -> Result<Report, Box<Failure>>
where
    F: Fn() -> Result<(), String> + Sync,
{
    let cfg = ModelConfig {
        seed: id.seed,
        schedules: id.index + 1,
        ..*cfg
    };
    explore(&cfg, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel;
    use crate::thread as cthread;

    fn quick(schedules: u64) -> ModelConfig {
        ModelConfig {
            seed: 7,
            schedules,
            dfs_depth: 12,
            max_steps: 100_000,
        }
    }

    #[test]
    fn explores_simple_pingpong_without_violations() {
        let report = explore(&quick(64), || {
            let (tx, rx) = channel::bounded::<u32>(1);
            let (btx, brx) = channel::bounded::<u32>(1);
            cthread::scope(|s| {
                s.spawn(move |_| {
                    for i in 0..3 {
                        tx.send(i).unwrap();
                        assert_eq!(brx.recv().unwrap(), i * 10);
                    }
                });
                for i in 0..3 {
                    assert_eq!(rx.recv().unwrap(), i);
                    btx.send(i * 10).unwrap();
                }
            })
            .unwrap();
            Ok(())
        })
        .expect("pingpong deadlock-free");
        assert_eq!(report.schedules, 64);
        assert!(report.max_decision_points > 0);
    }

    #[test]
    fn detects_a_classic_cyclic_deadlock() {
        // Two tasks each fill a cap-1 channel then send again: whenever
        // both first sends land before either recv, both block forever.
        let failure = explore(&quick(512), || {
            let (tx_a, rx_a) = channel::bounded::<u8>(1);
            let (tx_b, rx_b) = channel::bounded::<u8>(1);
            cthread::scope(|s| {
                s.spawn(move |_| {
                    tx_a.send(1).unwrap();
                    tx_a.send(2).unwrap();
                    let _ = rx_b.recv();
                });
                tx_b.send(1).unwrap();
                tx_b.send(2).unwrap();
                let _ = rx_a.recv();
            })
            .unwrap();
            Ok(())
        })
        .expect_err("the cyclic schedule must be found");
        assert!(
            matches!(failure.violation, Violation::Deadlock { .. }),
            "expected deadlock, got {}",
            failure.violation
        );
    }

    #[test]
    fn failing_schedule_replays_deterministically() {
        let run = || {
            let (tx, rx) = channel::bounded::<u8>(1);
            let (tx2, rx2) = channel::bounded::<u8>(1);
            cthread::scope(|s| {
                s.spawn(move |_| {
                    // Racy: only loses when scheduled after main's recv
                    // deadline... simulated via an order-dependent check.
                    tx.send(1).unwrap();
                    let _ = rx2.recv();
                });
                // Nondeterministic observation: try_recv may or may not
                // see the message depending on the schedule.
                let seen = rx.try_recv().is_ok();
                tx2.send(0).unwrap();
                if !seen {
                    let _ = rx.recv();
                    return Err("observed empty before send".to_string());
                }
                Ok(())
            })
            .unwrap()
        };
        let failure = explore(&quick(256), run).expect_err("some schedule observes empty");
        let replayed = replay(&quick(256), failure.schedule, run)
            .expect_err("replay reproduces the violation");
        assert_eq!(replayed.schedule, failure.schedule);
        assert_eq!(replayed.violation, failure.violation);
    }

    #[test]
    fn virtual_recv_timeout_only_fires_when_no_sender_can_act() {
        // A healthy sender exists on every schedule: the timeout must
        // never fire, no matter the interleaving.
        let report = explore(&quick(128), || {
            let (tx, rx) = channel::bounded::<u8>(1);
            cthread::scope(|s| {
                s.spawn(move |_| {
                    tx.send(42).unwrap();
                });
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(42) => Ok(()),
                    other => Err(format!("expected Ok(42), got {other:?}")),
                }
            })
            .unwrap()
        })
        .expect("no spurious timeouts");
        assert_eq!(report.schedules, 128);

        // No sender ever sends: the timeout must fire (deterministically
        // from schedule state) rather than deadlock.
        explore(&quick(16), || {
            let (tx, rx) = channel::bounded::<u8>(1);
            let got = rx.recv_timeout(Duration::from_millis(5));
            drop(tx);
            match got {
                Err(channel::RecvTimeoutError::Timeout) => Ok(()),
                other => Err(format!("expected Timeout, got {other:?}")),
            }
        })
        .expect("timeout path is not a violation");
    }

    #[test]
    fn step_limit_catches_livelock() {
        let failure = explore(
            &ModelConfig {
                max_steps: 500,
                ..quick(4)
            },
            || {
                let (_tx, rx) = channel::bounded::<u8>(1);
                let backoff = crate::utils::Backoff::new();
                loop {
                    if rx.try_recv().is_ok() {
                        return Ok(());
                    }
                    backoff.snooze();
                }
            },
        )
        .expect_err("spinning forever must hit the step limit");
        assert!(matches!(failure.violation, Violation::StepLimit { .. }));
    }

    #[test]
    fn schedule_id_roundtrips_through_display() {
        let id = ScheduleId {
            seed: 123,
            index: 456,
        };
        assert_eq!(ScheduleId::parse(&id.to_string()), Some(id));
        assert_eq!(ScheduleId::parse("nope"), None);
        assert_eq!(ScheduleId::parse("1:2:3"), None);
    }
}
