//! Offline shim for the `crossbeam` subset this workspace uses:
//! `channel::{bounded, Sender, Receiver}`, `thread::scope`, and
//! `utils::Backoff`, built on `std::sync::mpsc` and
//! `std::thread::scope`.
//!
//! The shim has a second personality: when a [`model`] session is
//! active on the calling thread (installed by [`model::explore`] /
//! [`model::replay`]), every channel and every scoped thread routes
//! through a cooperative model-checking scheduler instead of the OS.
//! Code under test needs no changes — `km-check` runs the distributed
//! engine under thousands of schedules through exactly this switch.

pub mod model;

pub mod channel {
    //! Bounded MPSC channels (crossbeam-channel API subset).

    use crate::model;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    enum SenderImpl<T> {
        Real(mpsc::SyncSender<T>),
        Model(model::ModelSender<T>),
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(SenderImpl<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderImpl::Real(tx) => SenderImpl::Real(tx.clone()),
                SenderImpl::Model(tx) => SenderImpl::Model(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued or the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderImpl::Real(tx) => tx.send(msg),
                SenderImpl::Model(tx) => tx.send(msg),
            }
        }

        /// Non-blocking send: `Err(TrySendError::Full)` when the channel
        /// is at capacity (the caller gets the message back).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderImpl::Real(tx) => tx.try_send(msg),
                SenderImpl::Model(tx) => tx.try_send(msg),
            }
        }
    }

    enum ReceiverImpl<T> {
        Real(mpsc::Receiver<T>),
        Model(model::ModelReceiver<T>),
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(ReceiverImpl<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.0 {
                ReceiverImpl::Real(rx) => rx.recv(),
                ReceiverImpl::Model(rx) => rx.recv(),
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            match &self.0 {
                ReceiverImpl::Real(rx) => rx.try_recv(),
                ReceiverImpl::Model(rx) => rx.try_recv(),
            }
        }

        /// Blocks until a message arrives, all senders are gone, or
        /// `timeout` elapses — the primitive behind the distributed
        /// engine's round-barrier timeout. Under a model session the
        /// timeout is measured on the virtual clock and fires only when
        /// no schedule can deliver first.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match &self.0 {
                ReceiverImpl::Real(rx) => rx.recv_timeout(timeout),
                ReceiverImpl::Model(rx) => rx.recv_timeout(timeout),
            }
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        match model::current() {
            None => {
                let (tx, rx) = mpsc::sync_channel(cap);
                (
                    Sender(SenderImpl::Real(tx)),
                    Receiver(ReceiverImpl::Real(rx)),
                )
            }
            Some(sess) => {
                let (tx, rx) = model::model_bounded(sess, cap);
                (
                    Sender(SenderImpl::Model(tx)),
                    Receiver(ReceiverImpl::Model(rx)),
                )
            }
        }
    }
}

pub mod thread {
    //! Scoped threads (crossbeam-utils API subset).

    use crate::model;
    use std::any::Any;
    use std::sync::Arc;

    /// A scope handed to [`scope`]'s closure; spawned threads may borrow
    /// from the enclosing stack frame and are joined before `scope`
    /// returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        tracker: Option<Arc<model::ScopeTracker>>,
    }

    /// Handle to a scoped thread; joined automatically at scope exit.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload). Model-mode threads finish cooperatively, so
        /// by the time the OS join returns the scheduler has already
        /// retired the task.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it
        /// can spawn further threads), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            match &self.tracker {
                None => ScopedJoinHandle {
                    inner: self.inner.spawn(move || {
                        f(&Scope {
                            inner,
                            tracker: None,
                        })
                    }),
                },
                Some(tracker) => {
                    // Register the task while the parent is still the
                    // active task, so ids are schedule-deterministic.
                    let id = tracker.sess.register_task();
                    tracker.add(id);
                    let sess = tracker.sess.clone();
                    let tracker2 = tracker.clone();
                    ScopedJoinHandle {
                        inner: self.inner.spawn(move || {
                            model::run_task(sess, id, move || {
                                f(&Scope {
                                    inner,
                                    tracker: Some(tracker2),
                                })
                            })
                        }),
                    }
                }
            }
        }
    }

    /// Runs `f` with a thread scope; every spawned thread is joined
    /// before this returns. Unlike crossbeam, a panicking child makes
    /// the whole call panic (std semantics), so the `Err` arm is never
    /// produced — callers that `.expect()` the result behave
    /// identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        match model::current() {
            None => Ok(std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    tracker: None,
                })
            })),
            Some(sess) => Ok(std::thread::scope(|s| {
                let tracker = Arc::new(model::ScopeTracker::new(sess));
                // Drain runs after `f` returns (or unwinds) but before
                // std's native join: every model task is retired through
                // the scheduler first, so the OS join never blocks on a
                // task the scheduler hasn't scheduled.
                let _drain = DrainGuard(tracker.clone());
                f(&Scope {
                    inner: s,
                    tracker: Some(tracker),
                })
            })),
        }
    }

    struct DrainGuard(Arc<model::ScopeTracker>);

    impl Drop for DrainGuard {
        fn drop(&mut self) {
            self.0.drain();
        }
    }
}

pub mod utils {
    //! Spin-wait helper (crossbeam-utils API subset).

    use crate::model;

    /// Backoff for spin loops. In real mode `snooze` yields the OS
    /// thread; under a model session it parks the task until any other
    /// task makes progress or the virtual clock ticks at quiescence —
    /// which is what lets poll loops coexist with deterministic
    /// virtual-time timeouts.
    #[derive(Debug, Default)]
    pub struct Backoff {
        _private: (),
    }

    impl Backoff {
        pub fn new() -> Backoff {
            Backoff { _private: () }
        }

        /// Yields to other threads (real mode) or to the model
        /// scheduler (model mode).
        pub fn snooze(&self) {
            match model::current() {
                None => std::thread::yield_now(),
                Some(sess) => sess.spin_park(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn recv_timeout_times_out_and_recovers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = super::channel::bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_reports_full_without_losing_the_message() {
        use super::channel::TrySendError;
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
