//! Offline shim for the `crossbeam` subset this workspace uses:
//! `channel::{bounded, Sender, Receiver}` and `thread::scope`, built on
//! `std::sync::mpsc` and `std::thread::scope`.

pub mod channel {
    //! Bounded MPSC channels (crossbeam-channel API subset).

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued or the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }

        /// Non-blocking send: `Err(TrySendError::Full)` when the channel
        /// is at capacity (the caller gets the message back).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a message arrives, all senders are gone, or
        /// `timeout` elapses — the primitive behind the distributed
        /// engine's round-barrier timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    //! Scoped threads (crossbeam-utils API subset).

    use std::any::Any;

    /// A scope handed to [`scope`]'s closure; spawned threads may borrow
    /// from the enclosing stack frame and are joined before `scope`
    /// returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it
        /// can spawn further threads), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a thread scope; every spawned thread is joined
    /// before this returns. Unlike crossbeam, a panicking child makes
    /// the whole call panic (std semantics), so the `Err` arm is never
    /// produced — callers that `.expect()` the result behave
    /// identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn recv_timeout_times_out_and_recovers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = super::channel::bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_reports_full_without_losing_the_message() {
        use super::channel::TrySendError;
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
