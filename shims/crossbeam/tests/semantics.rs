//! Model-mode channels must behave like real-mode channels: same FIFO
//! order, same capacity blocking, same disconnect errors, same
//! `recv_timeout` outcomes. Each scenario here is one closure run twice
//! — once on real OS threads, once under the model scheduler (every
//! explored schedule) — and must succeed identically in both worlds.

use crossbeam::channel::{bounded, RecvTimeoutError, TryRecvError, TrySendError};
use crossbeam::model::{explore, ModelConfig};
use crossbeam::thread;
use std::time::Duration;

/// Runs `f` on real threads, then under 32 model schedules; any failure
/// in either world (panic, deadlock, returned Err) fails the test.
fn both_worlds(name: &str, f: impl Fn() -> Result<(), String> + Sync) {
    f().unwrap_or_else(|e| panic!("{name} failed on real threads: {e}"));
    let cfg = ModelConfig {
        seed: 7,
        schedules: 32,
        dfs_depth: 16,
        max_steps: 100_000,
    };
    let report =
        explore(&cfg, &f).unwrap_or_else(|fail| panic!("{name} failed under the model: {fail}"));
    assert_eq!(report.schedules, 32);
}

#[test]
fn fifo_order_per_channel() {
    both_worlds("fifo", || {
        let (tx, rx) = bounded::<u32>(2);
        thread::scope(|s| {
            s.spawn(move |_| {
                for i in 0..8 {
                    tx.send(i).map_err(|_| "receiver gone")?;
                }
                Ok::<(), String>(())
            });
            for want in 0..8 {
                let got = rx.recv().map_err(|_| "sender gone")?;
                if got != want {
                    return Err(format!("FIFO broken: got {got}, want {want}"));
                }
            }
            Ok(())
        })
        .map_err(|_| "scope panicked")?
    });
}

#[test]
fn capacity_blocks_senders_until_drained() {
    both_worlds("capacity", || {
        let (tx, rx) = bounded::<u32>(1);
        // Fill the only slot; the next try_send must report Full with
        // the rejected value, not block or drop.
        tx.send(1).map_err(|_| "receiver gone")?;
        match tx.try_send(2) {
            Err(TrySendError::Full(2)) => {}
            other => return Err(format!("want Full(2), got {other:?}")),
        }
        // A blocked send completes once the receiver drains the slot.
        thread::scope(|s| {
            let h = s.spawn(move |_| tx.send(2).map_err(|_| "receiver gone".to_string()));
            if rx.recv().map_err(|_| "sender gone")? != 1 {
                return Err("first slot wrong".to_string());
            }
            if rx.recv().map_err(|_| "sender gone")? != 2 {
                return Err("blocked send lost".to_string());
            }
            h.join().map_err(|_| "sender panicked")?
        })
        .map_err(|_| "scope panicked")?
    });
}

#[test]
fn disconnects_surface_as_errors_after_draining() {
    both_worlds("disconnect", || {
        // Dropped receiver: send and try_send both fail.
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        if tx.send(1).is_ok() {
            return Err("send to a dropped receiver succeeded".into());
        }
        match tx.try_send(1) {
            Err(TrySendError::Disconnected(1)) => {}
            other => return Err(format!("want Disconnected(1), got {other:?}")),
        }
        // Dropped sender: buffered values still drain, then Disconnected.
        let (tx, rx) = bounded::<u32>(2);
        tx.send(7).map_err(|_| "receiver gone")?;
        drop(tx);
        if rx.recv() != Ok(7) {
            return Err("buffered value lost on sender drop".into());
        }
        if rx.recv().is_ok() {
            return Err("recv after disconnect succeeded".into());
        }
        match rx.try_recv() {
            Err(TryRecvError::Disconnected) => Ok(()),
            other => Err(format!("want Disconnected, got {other:?}")),
        }
    });
}

#[test]
fn recv_timeout_times_out_empty_and_delivers_sent() {
    both_worlds("recv_timeout", || {
        // Empty + live sender: times out (virtually under the model).
        let (tx, rx) = bounded::<u32>(1);
        match rx.recv_timeout(Duration::from_millis(5)) {
            Err(RecvTimeoutError::Timeout) => {}
            other => return Err(format!("want Timeout, got {other:?}")),
        }
        // A value sent from another thread arrives instead of a timeout
        // (generous bound so slow real schedulers can't flake it).
        thread::scope(|s| {
            s.spawn(move |_| tx.send(9));
            match rx.recv_timeout(Duration::from_secs(30)) {
                Ok(9) => Ok(()),
                other => Err(format!("want Ok(9), got {other:?}")),
            }
        })
        .map_err(|_| "scope panicked")?
    });
}
