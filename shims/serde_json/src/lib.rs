//! Offline shim for the `serde_json` subset this workspace uses:
//! [`to_string_pretty`] (and [`to_string`]) over the shim `serde`'s
//! [`Value`] model.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The shim's value model is total, so this is
/// never actually produced; it exists so call sites keep serde_json's
/// `Result` shape.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON (serde_json's pretty
/// format).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: always a decimal point or exponent.
                let s = format!("{x:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            level,
            out,
            |item, out, lvl| write_value(item, indent, lvl, out),
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            level,
            out,
            |(key, val), out, lvl| {
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, lvl, out);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        write_item(item, out, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: u32,
        label: String,
    }

    impl Serialize for Point {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("x".to_string(), self.x.to_value()),
                ("label".to_string(), self.label.to_value()),
            ])
        }
    }

    #[test]
    fn pretty_prints_nested_object() {
        let p = Point {
            x: 3,
            label: "a\"b".to_string(),
        };
        let s = to_string_pretty(&p).unwrap();
        assert_eq!(s, "{\n  \"x\": 3,\n  \"label\": \"a\\\"b\"\n}");
    }

    #[test]
    fn compact_prints_arrays() {
        let v = vec![1u8, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn floats_have_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
