//! Offline shim for the `proptest` subset this workspace uses.
//!
//! Supports the `proptest! { #[test] fn name(x in STRATEGY, ...) { .. } }`
//! macro with range, tuple, and `collection::vec` strategies, plus the
//! `prop_assert*` macros. Each property runs for `PROPTEST_CASES`
//! uniformly random cases (default 64, deterministic per test name).
//! There is **no shrinking**: a failure panics with the failing inputs
//! printed via `Debug`.

use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case generation for the shim runner.

    use rand::SeedableRng;

    /// The RNG driving strategy sampling.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Number of cases per property: `PROPTEST_CASES` env or 64.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    /// A per-test deterministic RNG (seeded from the test's name so
    /// independent properties see independent streams).
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// A generator of values of type `Value` (shim analogue of
/// `proptest::strategy::Strategy`, without shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A constant is a (degenerate) strategy, as in real proptest's `Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

pub mod collection {
    //! Collection strategies (`proptest::collection` subset).

    use super::{test_runner::TestRng, Strategy};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Size specification for [`vec()`]: an exact size or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)`: a vector of `size`-many samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        test_runner, Just, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are sampled from
/// strategies. Runs [`test_runner::cases()`] random cases; a failing
/// case panics immediately (no shrinking) with the inputs printed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Render inputs before the body runs: the body may
                    // consume them by value.
                    let inputs = format!(
                        concat!("[proptest shim] case {}/{} failed with:", $(concat!("\n  ", stringify!($arg), " = {:?}")),+),
                        case + 1, cases, $(&$arg),+
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || { $body }));
                    if let Err(payload) = result {
                        eprintln!("{inputs}");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the rest of the case when the assumption fails. (The shim
/// simply returns from the loop body closure — acceptable for the
/// rare, cheap assumptions this workspace uses.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro compiles, samples within bounds, and runs bodies.
        #[test]
        fn ranges_within_bounds(x in 3u32..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_of_tuples(edges in collection::vec((0u32..7, 0u32..7), 0..20)) {
            prop_assert!(edges.len() < 20);
            for (a, b) in &edges {
                prop_assert!(*a < 7 && *b < 7);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut r1 = test_runner::rng_for("x");
        let mut r2 = test_runner::rng_for("x");
        let a: u64 = rand::Rng::gen(&mut r1);
        let b: u64 = rand::Rng::gen(&mut r2);
        assert_eq!(a, b);
    }
}
