//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! See `shims/README.md` for why this exists (no network access to
//! crates.io) and what it promises. The traits mirror `rand_core` 0.6 /
//! `rand` 0.8 closely enough that swapping the real crates back in is a
//! manifest-only change.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same construction `rand_core` 0.6 documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from all their bit patterns
/// (`f64`/`f32` sample uniformly from `[0, 1)`), the `Standard`
/// distribution of real `rand`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Two 64-bit draws: all 128 bits are random.
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (unbiased).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t as Standard>::sample_standard(rng);
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (`rand::seq` subset).

    use super::{uniform_u64_below, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StepRng(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StepRng(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StepRng(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
