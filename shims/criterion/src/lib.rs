//! Offline shim for the `criterion` subset this workspace uses: the
//! `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `black_box`.
//!
//! Timing model: per benchmark, one warm-up run, then `sample_size`
//! timed runs (default 10, capped by a ~1 s budget); mean and min are
//! printed. No statistics, plots, or baselines — wall-clock smoke
//! numbers only, sufficient for "did this hot path regress 10×".

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A named benchmark id, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", 8)` displays as `algo/8`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher {
    samples: usize,
    /// Smoke mode (`cargo bench -- --test`): run the routine once to
    /// prove it works, skip the timing loop.
    smoke: bool,
    /// Filled by `iter`: (mean, min) per-iteration time.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also seeds the time budget estimate).
        let warm = Instant::now();
        black_box(routine());
        let per_iter = warm.elapsed();
        if self.smoke {
            self.result = Some((per_iter, per_iter));
            return;
        }

        // Keep the whole sample loop near ~1 s even for slow routines.
        let budget = Duration::from_secs(1);
        let fit = if per_iter.is_zero() {
            self.samples
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)) as usize
        };
        let samples = self.samples.min(fit).max(1);

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..samples {
            let t = Instant::now();
            black_box(routine());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / samples as u32, min));
    }
}

fn run_one(label: &str, samples: usize, smoke: bool, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        smoke,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(_) if smoke => println!("bench {label:<48} ok (smoke)"),
        Some((mean, min)) => {
            println!("bench {label:<48} mean {mean:>12?}  min {min:>12?}");
        }
        None => println!("bench {label:<48} (no iter() call)"),
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_name());
        run_one(&label, self.sample_size, self.smoke, f);
        self
    }

    /// Benchmarks `f` with an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_name());
        run_one(&label, self.sample_size, self.smoke, |b| f(b, input));
        self
    }

    /// Ends the group (printing is eager, so this is bookkeeping only).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            smoke: false,
        }
    }
}

impl Criterion {
    /// Reads CLI arguments, mirroring criterion's builder so
    /// `criterion_group!`-generated code stays source-compatible with
    /// the real crate. `--test` (as passed by `cargo bench -- --test`)
    /// enables smoke mode: each benchmark routine runs exactly once,
    /// untimed — CI uses this so benches compile and execute without
    /// paying for measurements.
    pub fn configure_from_args(mut self) -> Self {
        self.smoke = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let smoke = self.smoke;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            smoke,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into_name(), self.sample_size, self.smoke, f);
        self
    }

    /// Benchmarks a standalone function with an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&id.into_name(), self.sample_size, self.smoke, |b| {
            f(b, input)
        });
        self
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            })
        });
        group.finish();
        assert!(ran >= 2, "warm-up plus at least one sample");
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("algo", 8).to_string(), "algo/8");
    }
}
